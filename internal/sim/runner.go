package sim

import (
	"fmt"
	"time"

	"bfc/internal/bloom"
	"bfc/internal/cc"
	"bfc/internal/cc/dcqcn"
	"bfc/internal/cc/hpcc"
	"bfc/internal/core"
	"bfc/internal/eventsim"
	"bfc/internal/netsim"
	"bfc/internal/nic"
	"bfc/internal/packet"
	"bfc/internal/scenario"
	"bfc/internal/stats"
	"bfc/internal/switchsim"
	"bfc/internal/telemetry"
	"bfc/internal/telemetry/execstats"
	"bfc/internal/topology"
	"bfc/internal/units"
)

// Result carries everything the paper's figures report about a run.
type Result struct {
	Scheme Scheme

	// FCT aggregates slowdowns of completed background (non-incast,
	// non-long-lived) flows.
	FCT *stats.FCTCollector
	// FCTIncast aggregates incast-flow slowdowns separately.
	FCTIncast *stats.FCTCollector

	// FlowsTotal / FlowsCompleted count background flows offered / finished.
	FlowsTotal     int
	FlowsCompleted int

	// BufferOccupancy holds per-switch shared-buffer samples (bytes).
	BufferOccupancy stats.Distribution
	// MaxBufferOccupancy is the worst per-switch occupancy observed.
	MaxBufferOccupancy units.Bytes
	// MaxPhysicalQueueBytes is the largest single physical-queue depth seen
	// (Fig 10).
	MaxPhysicalQueueBytes units.Bytes
	// OccupiedQueues samples the number of busy physical queues (Fig 11a).
	OccupiedQueues stats.Distribution

	// Utilization is delivered payload over aggregate host capacity.
	Utilization float64
	// ReceiverUtilization is delivered payload over the capacity of hosts
	// that actually received traffic (used for the Fig 8 long-lived-flow
	// experiment, where only a subset of hosts are receivers).
	ReceiverUtilization float64

	// PauseTimeFraction is the fraction of link-time PFC-paused per link
	// class ("ToR->Spine", "Spine->ToR", "Host->ToR", ...).
	PauseTimeFraction map[string]float64

	// Drops, ECNMarks and PFCPauses aggregate switch counters.
	Drops     uint64
	ECNMarks  uint64
	PFCPauses uint64
	BFCFrames uint64

	// Collisions aggregates BFC queue-assignment statistics across switches.
	Assignments          uint64
	CollidedAssignments  uint64
	VFIDCollisions       uint64
	TableOverflowPackets uint64
	DataPackets          uint64
	Pauses               uint64
	Resumes              uint64
	MaxActiveFlows       int

	// Events is the number of simulator events executed (performance metric).
	Events uint64
	// Elapsed is the simulated time covered by the run.
	Elapsed units.Time

	// Scenario carries the per-scenario metrics (event windows, reroute
	// counts, stranded-packet accounting) when the run injected a scenario;
	// nil otherwise.
	Scenario *scenario.Metrics `json:"Scenario,omitempty"`

	// Telemetry carries the bounded time-series bundle when
	// Options.SampleSeries was set; nil (and absent from the JSON) otherwise,
	// so untraced results stay byte-identical to pre-telemetry ones. Digest
	// comparisons across the on/off boundary use ResultDigest, which excludes
	// this field.
	Telemetry *telemetry.RunSeries `json:"Telemetry,omitempty"`

	// Sharding reports how the run was executed (shards requested and used,
	// and why a sharded request fell back to serial, if it did). Excluded from
	// the JSON so serialized results — and their digests — stay byte-identical
	// across shard counts, which is the engine's core contract.
	Sharding ShardInfo `json:"-"`

	// Exec carries the wall-clock execution profile when Options.ExecStats
	// was set; nil otherwise. Excluded from the JSON (and therefore from
	// ResultDigest and persisted artifacts, which deliberately carry no
	// wall-clock information) — it exists for live observability: service
	// metrics, the harness aggregate, and the wall-clock Chrome trace.
	Exec *execstats.RunStats `json:"-"`
}

// CollisionFraction returns the fraction of queue assignments that collided
// with an already-occupied queue (Fig 7b, 12a).
func (r *Result) CollisionFraction() float64 {
	if r.Assignments == 0 {
		return 0
	}
	return float64(r.CollidedAssignments) / float64(r.Assignments)
}

// VFIDCollisionFraction returns per-packet VFID aliasing frequency (Fig 13a).
func (r *Result) VFIDCollisionFraction() float64 {
	if r.DataPackets == 0 {
		return 0
	}
	return float64(r.VFIDCollisions) / float64(r.DataPackets)
}

// OverflowFraction returns the fraction of data packets handled through the
// overflow queue because the flow table was full (Fig 13a).
func (r *Result) OverflowFraction() float64 {
	if r.DataPackets == 0 {
		return 0
	}
	return float64(r.TableOverflowPackets) / float64(r.DataPackets)
}

// Run executes one simulation of the given flows under the options.
func Run(opts Options, flows []*packet.Flow) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	plan, fallback := shardPlanFor(&opts)
	if plan != nil {
		res, err := runSharded(opts, plan, flows)
		if err != nil {
			return nil, err
		}
		res.Sharding = ShardInfo{Requested: opts.Shards, Used: plan.Shards}
		return res, nil
	}
	r := newRunner(opts)
	res, err := r.run(flows)
	if err != nil {
		return nil, err
	}
	res.Sharding = ShardInfo{Requested: opts.Shards, Used: 1, Fallback: fallback}
	return res, nil
}

type runner struct {
	opts  Options
	sched *eventsim.Scheduler
	topo  *topology.Topology
	pool  *packet.Pool

	switches map[packet.NodeID]*switchsim.Switch
	nics     map[packet.NodeID]*nic.NIC
	devices  map[packet.NodeID]netsim.Device

	// plan and shardID restrict the runner to one shard of a partitioned run
	// (plan nil for the classic serial engine). A shard runner owns only the
	// devices its shard is assigned, buffers flow completions in fctBuf
	// instead of recording them (the coordinator merges the per-shard streams
	// into serial order), and leaves sampling to the coordinator.
	plan    *topology.ShardPlan
	shardID int
	fctBuf  []fctRec

	// scen is the installed scenario's metrics (nil without a scenario).
	scen *scenario.Metrics

	// strandedPkts/strandedBytes and injectedFlows accumulate scenario
	// counters runner-locally. A serial run folds them into scen at collect
	// time; a sharded run's coordinator sums them across shards — shard
	// windows run in parallel, so shards must never write the shared Metrics.
	strandedPkts  uint64
	strandedBytes units.Bytes
	injectedFlows int

	// rec is the flight recorder (nil when disabled); sampler is the series
	// sampler (nil unless Options.SampleSeries).
	rec     telemetry.Recorder
	sampler *seriesSampler

	result *Result
}

// owned reports whether this runner builds and runs the given node.
func (r *runner) owned(id packet.NodeID) bool {
	return r.plan == nil || r.plan.Assign[id] == r.shardID
}

func newRunner(opts Options) *runner {
	res := &Result{
		Scheme:            opts.Scheme,
		FCT:               stats.NewFCTCollector(nil),
		FCTIncast:         stats.NewFCTCollector(nil),
		PauseTimeFraction: map[string]float64{},
	}
	if opts.StreamingStats {
		// Constant-memory mode: every distribution the run grows without
		// bound in exact mode becomes a fixed-capacity sketch.
		res.FCT = stats.NewStreamingFCTCollector(nil, opts.StatsSketchSize)
		res.FCTIncast = stats.NewStreamingFCTCollector(nil, opts.StatsSketchSize)
		res.BufferOccupancy = stats.NewStreamingDistribution(opts.StatsSketchSize)
		res.OccupiedQueues = stats.NewStreamingDistribution(opts.StatsSketchSize)
	}
	return &runner{
		opts:     opts,
		sched:    eventsim.New(),
		topo:     opts.Topo,
		pool:     packet.NewPool(),
		switches: map[packet.NodeID]*switchsim.Switch{},
		nics:     map[packet.NodeID]*nic.NIC{},
		devices:  map[packet.NodeID]netsim.Device{},
		rec:      opts.Recorder,
		result:   res,
	}
}

// hopRTT returns the one-hop round-trip time used by BFC: twice the
// propagation plus MTU serialization of the fastest fabric link.
func (r *runner) hopRTT() units.Time {
	var delay units.Time
	var rate units.Rate
	for _, n := range r.topo.Nodes() {
		for _, p := range n.Ports {
			if p.Delay > delay {
				delay = p.Delay
			}
			if rate == 0 || p.Rate < rate {
				rate = p.Rate
			}
		}
	}
	if rate == 0 {
		rate = 100 * units.Gbps
	}
	return 2 * (delay + units.SerializationTime(r.opts.MTU+packet.DataHeaderSize, rate))
}

func (r *runner) run(flows []*packet.Flow) (*Result, error) {
	opts := r.opts
	var execStart time.Time
	if opts.ExecStats {
		execStart = time.Now()
	}
	hopRTT := r.hopRTT()
	baseRTT := r.topo.MaxBaseRTT(opts.MTU + packet.DataHeaderSize)
	hostRate := r.topo.HostRate(r.topo.Hosts()[0])
	windowCap := opts.WindowCap
	if windowCap == 0 {
		windowCap = units.BDP(hostRate, baseRTT)
	}

	r.buildSwitches(hopRTT)
	r.buildNICs(hostRate, baseRTT, windowCap)
	r.wireLinks()
	r.scheduleFlows(flows)
	r.startSampling()

	horizon := opts.Duration + opts.Drain
	if opts.Scenario != nil {
		if err := r.installScenario(flows, horizon); err != nil {
			return nil, err
		}
	}
	r.sched.RunUntil(horizon)

	r.collect(horizon, flows)
	if opts.ExecStats {
		// Observational only: built after the last event fired, from counters
		// the engine maintains anyway, so the result bytes are untouched.
		r.result.Exec = execstats.Serial(time.Since(execStart), r.sched.Executed,
			r.sched.HeapHighWater(), r.pool.Allocated(), r.pool.Recycled())
	}
	return r.result, nil
}

func (r *runner) bfcConfig(hopRTT units.Time) *core.Config {
	opts := r.opts
	cfg := core.DefaultConfig()
	cfg.NumVFIDs = opts.NumVFIDs
	cfg.QueuesPerPort = opts.NumQueues
	cfg.Bloom = bloom.Params{SizeBytes: opts.BloomBytes, Hashes: bloom.DefaultHashes}
	cfg.HRTT = hopRTT
	cfg.Tau = hopRTT / 2
	cfg.DynamicAssignment = opts.Scheme != SchemeBFCStatic
	cfg.UseHighPriorityQueue = opts.HighPriorityQueue
	cfg.ResumeAll = opts.ResumeAll
	cfg.Seed = opts.Seed
	return &cfg
}

func (r *runner) buildSwitches(hopRTT units.Time) {
	opts := r.opts
	for _, node := range r.topo.Nodes() {
		if node.Kind != topology.Switch || !r.owned(node.ID) {
			continue
		}
		cfg := switchsim.Config{
			Scheduler:        r.sched,
			Topo:             r.topo,
			Node:             node,
			MTU:              opts.MTU,
			NumQueues:        opts.NumQueues,
			BufferSize:       opts.SwitchBuffer,
			EnablePFC:        !opts.DisablePFC,
			PFCThresholdFrac: 0.11,
			Seed:             opts.Seed,
			Pool:             r.pool,
			Recorder:         r.rec,
		}
		switch opts.Scheme {
		case SchemeBFC, SchemeBFCStatic:
			cfg.BFC = r.bfcConfig(hopRTT)
		case SchemeDCQCN, SchemeDCQCNWin:
			cfg.NumQueues = 1
			cfg.EnableECN = true
			cfg.ECNKmin, cfg.ECNKmax, cfg.ECNPmax = 100*units.KB, 400*units.KB, 1.0
		case SchemeDCQCNWinSFQ:
			cfg.SFQ = true
			cfg.EnableECN = true
			cfg.ECNKmin, cfg.ECNKmax, cfg.ECNPmax = 100*units.KB, 400*units.KB, 1.0
		case SchemeHPCC:
			cfg.NumQueues = 1
			cfg.EnableINT = true
		case SchemeIdealFQ:
			cfg.SFQ = true
			cfg.NumQueues = opts.IdealFQQueues
			cfg.InfiniteBuffer = true
			cfg.EnablePFC = false
		}
		sw := switchsim.New(cfg)
		r.switches[node.ID] = sw
		r.devices[node.ID] = sw
	}
}

func (r *runner) buildNICs(hostRate units.Rate, baseRTT units.Time, windowCap units.Bytes) {
	opts := r.opts
	for _, node := range r.topo.Nodes() {
		if node.Kind != topology.Host || !r.owned(node.ID) {
			continue
		}
		cfg := nic.Config{
			Scheduler:      r.sched,
			Topo:           r.topo,
			Node:           node,
			MTU:            opts.MTU,
			RTO:            4 * units.Millisecond,
			OnFlowComplete: r.onFlowComplete,
			Pool:           r.pool,
			Recorder:       r.rec,
		}
		switch opts.Scheme {
		case SchemeBFC, SchemeBFCStatic:
			cfg.VFIDSpace = opts.NumVFIDs
		case SchemeDCQCN:
			cfg.GenerateCNP = true
			cfg.CNPInterval = 50 * units.Microsecond
			cfg.NewController = func(f *packet.Flow) cc.Controller {
				return dcqcn.New(dcqcn.DefaultParams(hostRate))
			}
		case SchemeDCQCNWin, SchemeDCQCNWinSFQ:
			cfg.GenerateCNP = true
			cfg.CNPInterval = 50 * units.Microsecond
			cfg.NewController = func(f *packet.Flow) cc.Controller {
				p := dcqcn.DefaultParams(hostRate)
				p.Window = windowCap
				return dcqcn.New(p)
			}
		case SchemeHPCC:
			cfg.EchoINT = true
			cfg.NewController = func(f *packet.Flow) cc.Controller {
				return hpcc.New(hpcc.DefaultParams(hostRate, baseRTT))
			}
		case SchemeIdealFQ:
			cfg.NewController = func(f *packet.Flow) cc.Controller {
				return cc.FixedWindow{W: windowCap}
			}
		}
		n := nic.New(cfg)
		r.nics[node.ID] = n
		r.devices[node.ID] = n
	}
}

// wireLinks creates the unidirectional links for every topology port pair and
// attaches them to the devices.
func (r *runner) wireLinks() {
	r.wireLinksWith(func(id packet.NodeID) netsim.Device { return r.devices[id] }, nil)
}

// wireLinksWith wires the outgoing links of every node this runner owns,
// resolving receiving devices through peerDev (which, in a sharded run, spans
// all shards) and marking links for which boundary returns a queue as
// cross-shard.
func (r *runner) wireLinksWith(peerDev func(packet.NodeID) netsim.Device, boundary func(from, to packet.NodeID) *netsim.Boundary) {
	for _, node := range r.topo.Nodes() {
		dev := r.devices[node.ID]
		if dev == nil {
			continue // another shard owns this node
		}
		for portIdx, port := range node.Ports {
			peer := peerDev(port.Peer)
			name := fmt.Sprintf("%s:p%d->%s", node.Name, portIdx, r.topo.Node(port.Peer).Name)
			link := netsim.NewLink(r.sched, name, port.Rate, port.Delay, peer, port.PeerPort)
			link.OnStranded = r.onStranded
			if r.rec != nil {
				// When tracing, identify the sending end of the link in the
				// stranding event. The extra closure exists only on traced
				// runs; untraced runs keep the shared allocation-free handler.
				nodeID, p := node.ID, portIdx
				link.OnStranded = func(pkt *packet.Packet) {
					r.rec.Record(telemetry.Event{At: r.sched.Now(), Kind: telemetry.KindStranded,
						Node: nodeID, Port: int32(p), Queue: -1, Flow: pkt.Flow.ID, Value: int64(pkt.Size)})
					r.onStranded(pkt)
				}
			}
			if boundary != nil {
				if b := boundary(node.ID, port.Peer); b != nil {
					link.SetBoundary(b)
				}
			}
			dev.AttachLink(portIdx, link)
		}
	}
}

// Scenario integration ---------------------------------------------------------

// scenarioParams builds the compile context a scenario spec resolves against.
// The serial installer and the sharded coordinator share it, so a spec
// compiles to the identical flow set (same IDs, ports, RNG draws) either way.
func scenarioParams(opts *Options, flows []*packet.Flow, horizon units.Time) scenario.Params {
	var maxID packet.FlowID
	for _, f := range flows {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	sketchSize := 0
	if opts.StreamingStats {
		sketchSize = opts.StatsSketchSize
	}
	return scenario.Params{
		Topo:            opts.Topo,
		Hosts:           opts.Topo.Hosts(),
		HostRate:        opts.Topo.HostRate(opts.Topo.Hosts()[0]),
		Horizon:         horizon,
		FirstFlowID:     maxID + 1,
		StatsSketchSize: sketchSize,
	}
}

// installScenario compiles and schedules the configured scenario spec.
func (r *runner) installScenario(flows []*packet.Flow, horizon units.Time) error {
	p := scenarioParams(&r.opts, flows, horizon)
	p.Recorder = r.rec
	m, err := scenario.Install(r.sched, r, r.opts.Scenario, p)
	if err != nil {
		return err
	}
	r.scen = m
	return nil
}

// onStranded is the terminal owner of packets lost on failed links: it keeps
// the loss accounting and recycles the packet so nothing leaks from the pool.
func (r *runner) onStranded(p *packet.Packet) {
	r.strandedPkts++
	r.strandedBytes += p.Size
	r.pool.Put(p)
}

// startInjected is the per-shard landing point for scenario flow injections:
// it counts the injection locally (the coordinator merges the counters into
// the scenario metrics) and starts the flow at its source NIC.
func (r *runner) startInjected(f *packet.Flow) {
	r.injectedFlows++
	r.StartFlow(f)
}

// outLink returns a device's outgoing link on the given port.
func (r *runner) outLink(id packet.NodeID, port int) *netsim.Link {
	if sw, ok := r.switches[id]; ok {
		return sw.Link(port)
	}
	return r.nics[id].Link()
}

// SetLinkState implements scenario.Network: reroute first (so no new packet
// is steered at the dead link), then flip both unidirectional links, then
// reset the pause machinery on both attached devices.
func (r *runner) SetLinkState(a, b packet.NodeID, up bool) int {
	pa, pb, ok := r.topo.LinkBetween(a, b)
	if !ok {
		panic(fmt.Sprintf("sim: no link between nodes %d and %d", a, b))
	}
	reroutes := r.topo.SetLinkState(a, b, up)
	if r.rec != nil {
		kind := telemetry.KindLinkDown
		if up {
			kind = telemetry.KindLinkUp
		}
		r.rec.Record(telemetry.Event{At: r.sched.Now(), Kind: kind,
			Node: a, Port: int32(pa), Queue: -1, Value: int64(reroutes)})
	}
	if l := r.outLink(a, pa); l != nil {
		l.SetDown(!up)
	}
	if l := r.outLink(b, pb); l != nil {
		l.SetDown(!up)
	}
	r.notifyLinkChange(a, pa, up)
	r.notifyLinkChange(b, pb, up)
	return reroutes
}

func (r *runner) notifyLinkChange(id packet.NodeID, port int, up bool) {
	if sw, ok := r.switches[id]; ok {
		sw.OnLinkStateChange(port, up)
		return
	}
	r.nics[id].OnLinkStateChange(up)
}

// SetLinkParams implements scenario.Network: degrade both directions of a
// link (topology tables and wired links).
func (r *runner) SetLinkParams(a, b packet.NodeID, rate units.Rate, delay units.Time) {
	pa, pb, ok := r.topo.LinkBetween(a, b)
	if !ok {
		panic(fmt.Sprintf("sim: no link between nodes %d and %d", a, b))
	}
	r.topo.SetLinkParams(a, b, rate, delay)
	if r.rec != nil {
		r.rec.Record(telemetry.Event{At: r.sched.Now(), Kind: telemetry.KindLinkDegrade,
			Node: a, Port: int32(pa), Queue: -1, Value: int64(rate)})
	}
	for _, l := range []*netsim.Link{r.outLink(a, pa), r.outLink(b, pb)} {
		if l != nil {
			l.SetRate(rate)
			l.SetDelay(delay)
		}
	}
}

// StartFlow implements scenario.Network: start an injected flow at its
// source NIC, keeping the offered-flow accounting consistent with the base
// trace.
func (r *runner) StartFlow(f *packet.Flow) {
	r.nics[f.Src].StartFlow(f)
	if !f.IsIncast && !f.LongLived {
		r.result.FlowsTotal++
	}
}

func (r *runner) scheduleFlows(flows []*packet.Flow) {
	for _, f := range flows {
		if !r.owned(f.Src) {
			continue
		}
		f := f
		// Flow arrivals are causal roots: the tag seeds the flow's ID into
		// every event descending from it, ordering same-key descendants of
		// simultaneous arrivals (an incast burst) by flow creation order on
		// every shard.
		r.sched.ScheduleTagged(f.StartTime, uint64(f.ID), func() {
			r.nics[f.Src].StartFlow(f)
		})
		if !f.IsIncast && !f.LongLived {
			r.result.FlowsTotal++
		}
	}
}

func (r *runner) onFlowComplete(f *packet.Flow) {
	if f.LongLived {
		return
	}
	ideal := r.idealFCT(f)
	fct := f.FCT()
	if r.plan != nil {
		// Shard runner: completions are recorded into the merged collectors by
		// the coordinator, ordered by the triggering delivery event's key, so
		// the merged record stream is byte-identical to the serial one.
		r.fctBuf = append(r.fctBuf, fctRec{
			key: r.sched.CurrentKey(), start: f.StartTime,
			size: f.Size, fct: fct, ideal: ideal, incast: f.IsIncast})
		return
	}
	if r.scen != nil {
		r.scen.RecordCompletion(f.StartTime, f.Size, fct, ideal, f.IsIncast)
	}
	if f.IsIncast {
		r.result.FCTIncast.Record(f.Size, fct, ideal)
		return
	}
	r.result.FlowsCompleted++
	r.result.FCT.Record(f.Size, fct, ideal)
}

func (r *runner) idealFCT(f *packet.Flow) units.Time {
	return IdealFCT(r.topo, r.opts.MTU, f)
}

// IdealFCT is the best possible completion time for a flow on an unloaded
// network: the one-way path latency of its first packet plus the time to
// stream the remaining bytes (with per-packet headers) at the slowest link on
// the path. It is the denominator of every FCT-slowdown the evaluation
// reports.
func IdealFCT(topo *topology.Topology, mtu units.Bytes, f *packet.Flow) units.Time {
	rate := topo.MinPathRate(f.Src, f.Dst)
	firstPkt := minBytes(f.Size, mtu) + packet.DataHeaderSize
	wireBytes := f.Size + units.Bytes(f.NumPackets(mtu))*packet.DataHeaderSize
	oneWay := topo.PathOneWay(f.Src, f.Dst, firstPkt)
	return oneWay + units.SerializationTime(wireBytes, rate) - units.SerializationTime(firstPkt, rate)
}

func minBytes(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}

// sampleSwitches returns the switches in topology order, not map order: the
// sample sequence feeds Result distributions that the harness persists, and
// artifacts must be byte-identical across reruns and worker counts.
func (r *runner) sampleSwitches() []*switchsim.Switch {
	var sws []*switchsim.Switch
	for _, node := range r.topo.Nodes() {
		if sw, ok := r.switches[node.ID]; ok {
			sws = append(sws, sw)
		}
	}
	return sws
}

// sampleTick takes one statistics sample over sws. It is the body of the
// serial sampling ticker, and is called directly by the sharded coordinator
// at its tick barriers (where the shards are parked at exactly the state the
// serial tick would observe).
func (r *runner) sampleTick(sws []*switchsim.Switch) {
	for _, sw := range sws {
		occ := sw.BufferOccupancy()
		r.result.BufferOccupancy.Add(float64(occ))
		if occ > r.result.MaxBufferOccupancy {
			r.result.MaxBufferOccupancy = occ
		}
		r.result.OccupiedQueues.Add(float64(sw.OccupiedDataQueues()))
		if q := sw.MaxPhysicalQueueBytes(); q > r.result.MaxPhysicalQueueBytes {
			r.result.MaxPhysicalQueueBytes = q
		}
	}
	if r.sampler != nil {
		r.sampler.sample()
	}
}

func (r *runner) startSampling() {
	sws := r.sampleSwitches()
	// The time-series sampler piggybacks on this one ticker rather than
	// scheduling its own, so enabling it adds no simulator events and the
	// run's event stream is unchanged.
	if r.opts.SampleSeries {
		r.sampler = r.newSeriesSampler()
	}
	// Each tick's ordering key is the arithmetic chain (T, T-Δ, T-2Δ, T-3Δ),
	// which the sharded coordinator reconstructs at its barriers to flush
	// exactly the events a serial run executes before the sample.
	eventsim.NewTicker(r.sched, r.opts.BufferSampleInterval, func() {
		r.sampleTick(sws)
	})
}

func (r *runner) collect(horizon units.Time, flows []*packet.Flow) {
	res := r.result
	res.Elapsed = horizon
	if r.sched != nil {
		// The sharded coordinator (which runs collect on a scheduler-less
		// union view) sets Events itself: shard counts plus emulated ticks.
		res.Events = r.sched.Executed
	}

	// Utilization over all hosts, and over receivers only.
	var delivered units.Bytes
	receivers := map[packet.NodeID]bool{}
	for _, f := range flows {
		receivers[f.Dst] = true
	}
	var receiverDelivered units.Bytes
	for id, n := range r.nics {
		st := n.Stats()
		delivered += st.DeliveredBytes
		if receivers[id] {
			receiverDelivered += st.DeliveredBytes
		}
	}
	hostRate := r.topo.HostRate(r.topo.Hosts()[0])
	capacityAll := stats.NewUtilization(hostRate*units.Rate(len(r.topo.Hosts())), horizon)
	capacityAll.AddBytes(delivered)
	res.Utilization = capacityAll.Value()
	if len(receivers) > 0 {
		capRecv := stats.NewUtilization(hostRate*units.Rate(len(receivers)), horizon)
		capRecv.AddBytes(receiverDelivered)
		res.ReceiverUtilization = capRecv.Value()
	}

	// Switch counters and pause-time accounting.
	tracker := stats.NewPauseTracker(horizon)
	for id, sw := range r.switches {
		st := sw.Stats()
		res.Drops += st.Drops
		if r.scen != nil {
			r.scen.NoRouteDrops += st.NoRouteDrops
		}
		res.ECNMarks += st.ECNMarks
		res.PFCPauses += st.PFCPausesSent
		res.BFCFrames += st.BFCFramesSent
		node := r.topo.Node(id)
		for portIdx, port := range node.Ports {
			peerTier := r.topo.Node(port.Peer).Tier
			key := fmt.Sprintf("%s->%s", node.Tier, peerTier)
			tracker.RegisterLink(key)
			if link := sw.Link(portIdx); link != nil {
				tracker.AddPaused(key, link.PausedTime())
			}
		}
		if eng := sw.Engine(); eng != nil {
			es := eng.Stats()
			res.Assignments += es.Assignments
			res.CollidedAssignments += es.CollidedAssignments
			res.VFIDCollisions += es.VFIDCollisions
			res.TableOverflowPackets += es.TableOverflowPackets
			res.DataPackets += es.DataPackets
			res.Pauses += es.Pauses
			res.Resumes += es.Resumes
			if es.MaxActiveFlows > res.MaxActiveFlows {
				res.MaxActiveFlows = es.MaxActiveFlows
			}
		} else {
			res.DataPackets += st.DataPacketsIn
		}
	}
	// Host uplinks can also be PFC-paused (by the ToR); account them too.
	for id, n := range r.nics {
		node := r.topo.Node(id)
		key := fmt.Sprintf("%s->%s", node.Tier, r.topo.Node(node.Ports[0].Peer).Tier)
		tracker.RegisterLink(key)
		if link := n.Link(); link != nil {
			tracker.AddPaused(key, link.PausedTime())
		}
	}
	for _, key := range tracker.Keys() {
		res.PauseTimeFraction[key] = tracker.Fraction(key)
	}
	if r.scen != nil {
		r.scen.StrandedPackets += r.strandedPkts
		r.scen.StrandedBytes += r.strandedBytes
	}
	res.Scenario = r.scen
	if r.sampler != nil {
		res.Telemetry = r.sampler.finish()
	}
}
