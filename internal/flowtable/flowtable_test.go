package flowtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bfc/internal/packet"
)

func TestInsertLookupRemove(t *testing.T) {
	tbl := New(64, 4, 10)
	if tbl.Active() != 0 {
		t.Fatal("new table should be empty")
	}
	e, res := tbl.Insert(5, 1, 2)
	if res != InsertedBucket || e == nil {
		t.Fatalf("insert result = %v", res)
	}
	if e.Queue != -1 {
		t.Fatal("new entry should have no queue assigned")
	}
	if got := tbl.Lookup(5, 1, 2); got != e {
		t.Fatal("lookup did not return inserted entry")
	}
	if got := tbl.Lookup(5, 1, 3); got != nil {
		t.Fatal("lookup with different egress should miss")
	}
	if got := tbl.Lookup(5, 0, 2); got != nil {
		t.Fatal("lookup with different ingress should miss")
	}
	tbl.Remove(e)
	if tbl.Active() != 0 || tbl.Lookup(5, 1, 2) != nil {
		t.Fatal("entry not removed")
	}
}

func TestSameVFIDDifferentPorts(t *testing.T) {
	tbl := New(64, 4, 10)
	a, _ := tbl.Insert(7, 1, 2)
	b, _ := tbl.Insert(7, 3, 4)
	if a == b {
		t.Fatal("entries with different port pairs must be distinct")
	}
	if tbl.Lookup(7, 1, 2) != a || tbl.Lookup(7, 3, 4) != b {
		t.Fatal("lookup confused entries in the same bucket")
	}
	if tbl.Active() != 2 {
		t.Fatalf("active = %d, want 2", tbl.Active())
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	tbl := New(64, 4, 10)
	tbl.Insert(7, 1, 2)
	assertPanics(t, func() { tbl.Insert(7, 1, 2) })
}

func TestBucketOverflowToCache(t *testing.T) {
	tbl := New(8, 2, 3)
	// Fill bucket for VFID 1 (bucket size 2).
	tbl.Insert(1, 0, 0)
	tbl.Insert(1, 0, 1)
	// Third entry for same VFID goes to the overflow cache.
	e, res := tbl.Insert(1, 0, 2)
	if res != InsertedOverflowCache || e == nil {
		t.Fatalf("expected overflow cache insert, got %v", res)
	}
	if tbl.Lookup(1, 0, 2) != e {
		t.Fatal("overflow entry not found by lookup")
	}
	st := tbl.Stats()
	if st.BucketFull != 1 {
		t.Fatalf("BucketFull = %d, want 1", st.BucketFull)
	}
	// Removing an overflow entry works and frees cache space.
	tbl.Remove(e)
	if tbl.Lookup(1, 0, 2) != nil {
		t.Fatal("overflow entry not removed")
	}
}

func TestCacheFull(t *testing.T) {
	tbl := New(4, 1, 2)
	tbl.Insert(0, 0, 0) // bucket
	tbl.Insert(0, 0, 1) // cache 1
	tbl.Insert(0, 0, 2) // cache 2
	e, res := tbl.Insert(0, 0, 3)
	if res != InsertFailed || e != nil {
		t.Fatalf("expected InsertFailed, got %v", res)
	}
	if tbl.Stats().CacheFull != 1 {
		t.Fatalf("CacheFull = %d, want 1", tbl.Stats().CacheFull)
	}
	if tbl.Active() != 3 {
		t.Fatalf("active = %d, want 3", tbl.Active())
	}
}

func TestRemoveUnknownPanics(t *testing.T) {
	tbl := New(8, 2, 2)
	assertPanics(t, func() { tbl.Remove(nil) })
	assertPanics(t, func() { tbl.Remove(&Entry{VFID: 1}) })
	assertPanics(t, func() { tbl.Remove(&Entry{VFID: 1, inOverflow: true}) })
}

func TestVFIDOutOfRangePanics(t *testing.T) {
	tbl := New(8, 2, 2)
	assertPanics(t, func() { tbl.Lookup(8, 0, 0) })
	assertPanics(t, func() { tbl.Insert(100, 0, 0) })
}

func TestConstructorValidation(t *testing.T) {
	assertPanics(t, func() { New(0, 4, 100) })
	assertPanics(t, func() { New(16, 0, 100) })
	assertPanics(t, func() { New(16, 4, -1) })
}

func TestForEachAndMemory(t *testing.T) {
	tbl := New(128, 4, 10)
	tbl.Insert(1, 0, 1)
	tbl.Insert(2, 0, 1)
	tbl.Insert(3, 1, 2)
	seen := 0
	tbl.ForEach(func(e *Entry) { seen++ })
	if seen != 3 {
		t.Fatalf("ForEach visited %d entries, want 3", seen)
	}
	if tbl.MemoryBytes() != 128*4*4 {
		t.Fatalf("MemoryBytes = %d", tbl.MemoryBytes())
	}
	if tbl.NumVFIDs() != 128 {
		t.Fatalf("NumVFIDs = %d", tbl.NumVFIDs())
	}
}

func TestPaperSizing(t *testing.T) {
	// §3.8: 16K VFIDs, 4-way buckets => 256 KB of state.
	tbl := NewDefault()
	if tbl.MemoryBytes() != 256*1024 {
		t.Fatalf("default table memory = %d bytes, want 256KB", tbl.MemoryBytes())
	}
}

func TestMaxOccupancyTracking(t *testing.T) {
	tbl := New(64, 4, 10)
	a, _ := tbl.Insert(1, 0, 0)
	b, _ := tbl.Insert(2, 0, 0)
	tbl.Remove(a)
	tbl.Insert(3, 0, 0)
	tbl.Remove(b)
	if tbl.Stats().MaxOccupancy != 2 {
		t.Fatalf("MaxOccupancy = %d, want 2", tbl.Stats().MaxOccupancy)
	}
	if tbl.Stats().Inserts != 3 {
		t.Fatalf("Inserts = %d, want 3", tbl.Stats().Inserts)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}

// Property: a random interleaving of inserts and removes keeps the table
// consistent with a reference map, and Active always matches.
func TestTableMatchesReferenceMap(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(32, 2, 4)
		ref := map[Key]*Entry{}
		ops := int(opsRaw)
		for i := 0; i < ops; i++ {
			k := Key{
				VFID:    packet.VFID(rng.Intn(32)),
				Ingress: rng.Intn(3),
				Egress:  rng.Intn(3),
			}
			if e, ok := ref[k]; ok && rng.Intn(2) == 0 {
				tbl.Remove(e)
				delete(ref, k)
			} else if !ok {
				e, res := tbl.Insert(k.VFID, k.Ingress, k.Egress)
				if res != InsertFailed {
					ref[k] = e
				}
			}
			if tbl.Active() != len(ref) {
				return false
			}
			for k2, e2 := range ref {
				if tbl.Lookup(k2.VFID, k2.Ingress, k2.Egress) != e2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
