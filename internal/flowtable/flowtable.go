// Package flowtable implements the per-switch virtual-flow state store
// described in §3.8 of the BFC paper.
//
// State is kept only for flows that currently have packets queued at the
// switch. The table is a hash table indexed directly by VFID (so the key is
// implicit and never stored) with a small fixed bucket size; entries within a
// bucket are disambiguated by their (ingress, egress) port pair. Two 5-tuples
// that hash to the same VFID and share the same ingress and egress are —
// deliberately, as in the paper — treated as the same flow; the caller can
// detect and count such collisions for reporting.
//
// When a bucket is full, entries spill into a small associative overflow
// cache (the paper's "overflow TCAM", 100 entries). If that also fills, the
// caller must fall back to the per-egress overflow queue.
package flowtable

import (
	"fmt"

	"bfc/internal/packet"
	"bfc/internal/units"
)

// Default sizing from the paper's evaluation (§4.1, §3.8).
const (
	DefaultNumVFIDs    = 16384
	DefaultBucketSize  = 4
	DefaultOverflowCap = 100
)

// Entry is the state kept for one active virtual flow at one switch.
type Entry struct {
	VFID    packet.VFID
	Ingress int // ingress port the flow arrives on
	Egress  int // egress port the flow leaves on

	// Queue is the physical queue index at the egress port the flow is
	// assigned to. -1 means not yet assigned.
	Queue int

	// Paused records whether this switch has asked the upstream to pause the
	// flow (i.e. the VFID is registered in the ingress counting bloom
	// filter).
	Paused bool

	// Packets and Bytes count what is currently queued for this virtual flow
	// at this switch.
	Packets int
	Bytes   units.Bytes

	// HighPrioPackets counts packets of this flow currently sitting in the
	// egress high-priority queue (they are not in the assigned physical
	// queue).
	HighPrioPackets int

	// PendingResume marks a paused flow that has been placed on the
	// "toberesumed" list but whose bloom-filter entry has not yet been
	// cleared (§3.5: at most a bounded number of flows are resumed per
	// pause-frame interval per physical queue).
	PendingResume bool

	// LastFlow records the most recent concrete flow observed for this entry.
	// Two distinct 5-tuples that map to the same (VFID, ingress, egress) are
	// deliberately treated as one flow by the switch; LastFlow lets the
	// simulator count how often that aliasing happens (Fig 13a).
	LastFlow packet.FlowID

	// inOverflow marks entries living in the overflow cache rather than a
	// bucket slot.
	inOverflow bool
}

// Key identifies an entry: the VFID plus the port pair that disambiguates
// bucket slots.
type Key struct {
	VFID    packet.VFID
	Ingress int
	Egress  int
}

// Stats counts table-level events for the Fig 13 sensitivity experiment.
type Stats struct {
	// Inserts is the number of successful entry creations (bucket or cache).
	Inserts uint64
	// BucketFull counts inserts that could not use the direct-mapped bucket
	// and had to try the overflow cache.
	BucketFull uint64
	// CacheFull counts inserts that could not be stored at all (caller must
	// use the overflow queue).
	CacheFull uint64
	// MaxOccupancy is the high-water mark of simultaneously active entries.
	MaxOccupancy int
}

// Table is the VFID-indexed flow state table. It is not safe for concurrent
// use; the simulator is single threaded per run.
type Table struct {
	numVFIDs   int
	bucketSize int
	buckets    [][]*Entry // len numVFIDs, each at most bucketSize entries

	overflow    map[Key]*Entry
	overflowCap int

	active int
	stats  Stats

	// free recycles removed entries. Flow activations are the dominant
	// allocation in steady state (one entry per active flow per switch), and
	// the engine drops every pointer to an entry before calling Remove, so
	// reuse is invisible to callers.
	free []*Entry
}

// New creates a table with the given VFID space, bucket size and overflow
// cache capacity.
func New(numVFIDs, bucketSize, overflowCap int) *Table {
	if numVFIDs <= 0 {
		panic("flowtable: numVFIDs must be positive")
	}
	if bucketSize <= 0 {
		panic("flowtable: bucketSize must be positive")
	}
	if overflowCap < 0 {
		panic("flowtable: overflowCap must be non-negative")
	}
	return &Table{
		numVFIDs:    numVFIDs,
		bucketSize:  bucketSize,
		buckets:     make([][]*Entry, numVFIDs),
		overflow:    make(map[Key]*Entry),
		overflowCap: overflowCap,
	}
}

// NewDefault creates a table with the paper's default sizing.
func NewDefault() *Table {
	return New(DefaultNumVFIDs, DefaultBucketSize, DefaultOverflowCap)
}

// NumVFIDs returns the VFID space size.
func (t *Table) NumVFIDs() int { return t.numVFIDs }

// Active returns the number of entries currently stored.
func (t *Table) Active() int { return t.active }

// Stats returns a copy of the table statistics.
func (t *Table) Stats() Stats { return t.stats }

// MemoryBytes estimates the hardware memory footprint of the table. Each
// bucket slot packs its state (physical queue id, pause bit, packet counter,
// ingress/egress port ids) into 4 bytes, which reproduces the paper's 256 KB
// figure for the default 16K VFIDs x 4 slots (§3.8).
func (t *Table) MemoryBytes() units.Bytes {
	return units.Bytes(t.numVFIDs * t.bucketSize * 4)
}

// Lookup finds the entry for a VFID arriving on ingress and destined to
// egress. It returns nil if no such entry exists.
func (t *Table) Lookup(v packet.VFID, ingress, egress int) *Entry {
	t.checkVFID(v)
	for _, e := range t.buckets[v] {
		if e.Ingress == ingress && e.Egress == egress {
			return e
		}
	}
	if e, ok := t.overflow[Key{VFID: v, Ingress: ingress, Egress: egress}]; ok {
		return e
	}
	return nil
}

// InsertResult describes where a new entry was stored.
type InsertResult int

const (
	// InsertedBucket means the entry occupies a direct-mapped bucket slot.
	InsertedBucket InsertResult = iota
	// InsertedOverflowCache means the bucket was full and the entry lives in
	// the associative overflow cache.
	InsertedOverflowCache
	// InsertFailed means neither structure had room; the caller must handle
	// the flow through the per-egress overflow queue, without per-flow state.
	InsertFailed
)

// Insert creates an entry for a new active flow. The caller must have checked
// with Lookup that no entry exists (inserting a duplicate key panics, since
// it would silently split one flow's state in two).
func (t *Table) Insert(v packet.VFID, ingress, egress int) (*Entry, InsertResult) {
	t.checkVFID(v)
	if t.Lookup(v, ingress, egress) != nil {
		panic(fmt.Sprintf("flowtable: duplicate insert for VFID %d in=%d out=%d", v, ingress, egress))
	}
	var e *Entry
	if n := len(t.free); n > 0 {
		e = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		*e = Entry{VFID: v, Ingress: ingress, Egress: egress, Queue: -1}
	} else {
		e = &Entry{VFID: v, Ingress: ingress, Egress: egress, Queue: -1}
	}
	if len(t.buckets[v]) < t.bucketSize {
		t.buckets[v] = append(t.buckets[v], e)
		t.noteInsert()
		return e, InsertedBucket
	}
	t.stats.BucketFull++
	if len(t.overflow) < t.overflowCap {
		e.inOverflow = true
		t.overflow[Key{VFID: v, Ingress: ingress, Egress: egress}] = e
		t.noteInsert()
		return e, InsertedOverflowCache
	}
	t.stats.CacheFull++
	t.free = append(t.free, e)
	return nil, InsertFailed
}

func (t *Table) noteInsert() {
	t.active++
	t.stats.Inserts++
	if t.active > t.stats.MaxOccupancy {
		t.stats.MaxOccupancy = t.active
	}
}

// Remove deletes an entry once the last packet of the flow has left the
// switch. Removing an entry that is not in the table panics.
func (t *Table) Remove(e *Entry) {
	if e == nil {
		panic("flowtable: removing nil entry")
	}
	t.checkVFID(e.VFID)
	if e.inOverflow {
		k := Key{VFID: e.VFID, Ingress: e.Ingress, Egress: e.Egress}
		if t.overflow[k] != e {
			panic("flowtable: removing unknown overflow entry")
		}
		delete(t.overflow, k)
		t.active--
		t.free = append(t.free, e)
		return
	}
	b := t.buckets[e.VFID]
	for i, cur := range b {
		if cur == e {
			b[i] = b[len(b)-1]
			b[len(b)-1] = nil
			t.buckets[e.VFID] = b[:len(b)-1]
			t.active--
			t.free = append(t.free, e)
			return
		}
	}
	panic("flowtable: removing unknown entry")
}

// ForEach calls fn for every active entry. Iteration order over bucket slots
// is deterministic; overflow-cache order is not (it is only used for
// statistics).
func (t *Table) ForEach(fn func(*Entry)) {
	for _, b := range t.buckets {
		for _, e := range b {
			fn(e)
		}
	}
	for _, e := range t.overflow {
		fn(e)
	}
}

func (t *Table) checkVFID(v packet.VFID) {
	if int(v) >= t.numVFIDs {
		panic(fmt.Sprintf("flowtable: VFID %d outside space %d", v, t.numVFIDs))
	}
}
