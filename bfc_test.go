package bfc_test

import (
	"testing"

	"bfc"
)

// TestPublicAPIQuickstart exercises the documented public workflow end to
// end: build a topology, generate a workload, run BFC, inspect results.
func TestPublicAPIQuickstart(t *testing.T) {
	topo := bfc.NewSingleSwitch(8, 100*bfc.Gbps, bfc.Microsecond)
	trace, err := bfc.GenerateWorkload(bfc.WorkloadConfig{
		Hosts:    topo.Hosts(),
		CDF:      bfc.GoogleWorkload(),
		Load:     0.5,
		HostRate: 100 * bfc.Gbps,
		Duration: 200 * bfc.Microsecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := bfc.DefaultOptions(bfc.SchemeBFC, topo)
	opts.Duration = 200 * bfc.Microsecond
	opts.Drain = bfc.Millisecond
	res, err := bfc.Run(opts, trace.Flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsCompleted == 0 {
		t.Fatal("no flows completed through the public API")
	}
	if res.FCT.OverallPercentile(99) < 1 {
		t.Fatal("nonsensical slowdown")
	}
}

func TestPublicAPISchemeComparison(t *testing.T) {
	topo := bfc.NewT2()
	if len(topo.Hosts()) != 64 {
		t.Fatal("T2 should have 64 hosts")
	}
	if len(bfc.AllSchemes()) != 6 {
		t.Fatal("expected the six Fig 5 schemes")
	}
	for _, s := range bfc.AllSchemes() {
		if s.String() == "" {
			t.Fatal("scheme must have a name")
		}
	}
	// Ideal FCT of a 100 KB same-rack flow at 100 Gbps is ~10 us.
	hosts := topo.Hosts()
	f := &bfc.Flow{ID: 1, Src: hosts[0], Dst: hosts[1], Size: 100 * bfc.KB}
	ideal := bfc.IdealFCT(topo, 1000, f)
	if ideal < 8*bfc.Microsecond || ideal > 14*bfc.Microsecond {
		t.Fatalf("ideal FCT = %v, want ~10us", ideal)
	}
}

func TestPublicAPIWorkloadByName(t *testing.T) {
	for _, name := range []string{"google", "fb_hadoop", "websearch"} {
		cdf, err := bfc.WorkloadByName(name)
		if err != nil || cdf == nil {
			t.Fatalf("WorkloadByName(%q): %v", name, err)
		}
	}
	if _, err := bfc.WorkloadByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
