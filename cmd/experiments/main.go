// Command experiments regenerates the paper's tables and figures. Each figure
// has a named experiment (see DESIGN.md §3); the command prints the rows or
// series the figure plots.
//
// Grid-shaped figures (5a/5b/5c/6, 8, 9, 12, 13, 14) run on the experiment
// harness: their points are sharded across a worker pool (-parallel), each
// completed point can be persisted as a JSONL artifact (-out), and an
// interrupted run can be resumed without re-executing completed points
// (-resume).
//
// Examples:
//
//	experiments -fig 5a                       # headline result at reduced scale
//	experiments -fig 5a -schemes BFC,DCQCN    # restrict the scheme axis
//	experiments -fig 8  -full -parallel 16    # paper-scale sweep on 16 workers
//	experiments -fig all -out results/        # persist every point as JSONL
//	experiments -fig all -out results/ -resume  # rerun only what is missing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"bfc/internal/experiments"
	"bfc/internal/harness"
	"bfc/internal/sim"
	"bfc/internal/telemetry"
)

// sortedKeys returns a map's keys in sorted order: every figure row printed
// from a map must come out in a stable order so reruns diff cleanly.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	log.SetFlags(0)
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1,2,3,4,5a,5b,5c,6,7,8,9,10,11,12,13,14,15,16,17 or all")
		full     = flag.Bool("full", false, "use paper-scale parameters (slow)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for harness-backed figures")
		out      = flag.String("out", "", "results directory for per-job JSONL artifacts (empty = keep results in memory)")
		resume   = flag.Bool("resume", false, "skip jobs whose artifact already exists under -out")
		schemes  = flag.String("schemes", "all", `restrict the scheme axis of figures 5a/5b/5c (and 6, which reuses the 5a runs), 15, 16 and 17 ("BFC,DCQCN,..." or "all"); other figures have fixed scheme sets and ignore it`)
		shards   = flag.Int("shards", 0, "shards per run for the conservative-PDES engine (0/1 = serial, >=2 = explicit, -1 = auto: min(pods, GOMAXPROCS)); output is byte-identical across shard counts")
		list     = flag.Bool("list", false, "list the available figures/scenarios with descriptions and exit")
		traceDir = flag.String("trace-dir", "", "directory for fig 17's per-scheme flight-recorder exports (<scheme>.trace.json Chrome/Perfetto trace + <scheme>.events.jsonl)")
	)
	flag.Parse()

	if *list {
		listFigures()
		return
	}

	scale := experiments.Reduced()
	if *full {
		scale = experiments.Full()
	}
	scale.Shards = *shards

	// nil keeps each figure's default scheme set.
	var schemeList []sim.Scheme
	if *schemes != "all" {
		var err error
		schemeList, err = sim.ParseSchemes(*schemes)
		if err != nil {
			log.Fatal(err)
		}
	}

	runner := &harness.Runner{Parallel: *parallel, Progress: printProgress}
	if *resume && *out == "" {
		log.Fatal("experiments: -resume requires -out")
	}
	if *out != "" {
		store, err := harness.NewStore(*out)
		if err != nil {
			log.Fatal(err)
		}
		runner.Store = store
		runner.Resume = *resume
	}

	fmt.Printf("# scale: %s (%d ToR x %d hosts, %v horizon)\n\n",
		scale.Name, scale.NumToR, scale.HostsPerToR, scale.Duration)

	figs := strings.Split(strings.ToLower(*fig), ",")
	if *fig == "all" {
		figs = []string{"1", "2", "3", "4", "5a", "5b", "5c", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17"}
	}
	for _, f := range figs {
		runFigure(strings.TrimSpace(f), scale, runner, schemeList, *traceDir)
	}
}

// figureCatalog is the -list output: one row per runnable figure/scenario.
// Keep it in sync with runFigure.
var figureCatalog = []struct{ key, desc string }{
	{"1", "switch hardware trend table (static data)"},
	{"2", "DCQCN (no PFC) buffer occupancy vs link speed"},
	{"3", "DCQCN p99 FCT slowdown vs buffer/capacity ratio"},
	{"4", "byte-weighted flow-size CDFs of the three workloads"},
	{"5a", "headline p99 FCT slowdown, Google traffic at 60% + 5% incast"},
	{"5b", "headline p99 FCT slowdown, FB_Hadoop traffic at 60% + 5% incast"},
	{"5c", "headline p99 FCT slowdown, Google traffic at 65%, no incast"},
	{"6", "buffer occupancy and PFC pause time on the Fig 5a runs"},
	{"7", "dynamic vs static queue assignment (BFC vs BFC-VFID vs SFQ)"},
	{"8", "incast fan-in sweep: utilization and buffer p99"},
	{"9", "cross-data-center intra/inter tail latency"},
	{"10", "physical queue buffering vs concurrent flows (resume throttling)"},
	{"11", "high-priority queue ablation"},
	{"12", "sensitivity to number of physical queues"},
	{"13", "sensitivity to VFID table size"},
	{"14", "sensitivity to bloom filter size"},
	{"15", "scenario robustness: all schemes through a link fail/recover (see also cmd/scenarios)"},
	{"16", "scale tier: three-tier fat-tree host-count sweep with streaming stats (128-1024 hosts at -full)"},
	{"17", "congestion dynamics through an incast: queue occupancy + pause activity time-series, exportable as Perfetto traces (-trace-dir)"},
}

func listFigures() {
	for _, f := range figureCatalog {
		fmt.Printf("  %-4s %s\n", f.key, f.desc)
	}
}

// printProgress reports each finished harness job on stderr, keeping stdout
// clean for the figure rows.
func printProgress(p harness.Progress) {
	status := "ran"
	if p.Cached {
		status = "cached"
	}
	fmt.Fprintf(os.Stderr, "[%3d/%3d] %-56s %-6s %.2fs\n",
		p.Done, p.Total, p.Job, status, p.Elapsed.Seconds())
}

// run executes a harness job list, aborting the command on failure.
func run(runner *harness.Runner, jobs []harness.Job) []*harness.Record {
	recs, err := runner.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	return recs
}

// fig05Cache memoizes Fig 5 panels within one invocation, so "-fig all"
// renders Fig 6 from the records Fig 5a already produced instead of
// re-simulating the six-scheme panel.
var fig05Cache = map[experiments.Fig05Variant]*experiments.Fig05Result{}

func fig05(scale experiments.Scale, variant experiments.Fig05Variant, runner *harness.Runner, schemes []sim.Scheme) *experiments.Fig05Result {
	if res, ok := fig05Cache[variant]; ok {
		return res
	}
	recs := run(runner, experiments.Fig05Jobs(scale, variant, schemes))
	res := experiments.Fig05FromRecords(variant, recs)
	fig05Cache[variant] = res
	return res
}

func runFigure(fig string, scale experiments.Scale, runner *harness.Runner, schemes []sim.Scheme, traceDir string) {
	switch fig {
	case "1":
		fmt.Println("## Fig 1: switch hardware trend")
		for _, r := range experiments.Fig01HardwareTrend() {
			fmt.Printf("  %-10s %d  %5.2f Tbps  %5.1f MB  %6.1f us buffer/capacity\n",
				r.Chip, r.Year, r.CapacityTbps, r.BufferMB, r.BufferOverCapU)
		}
	case "2":
		fmt.Println("## Fig 2: DCQCN (no PFC) buffer occupancy vs link speed")
		for _, r := range experiments.Fig02BufferVsLinkSpeed(scale) {
			fmt.Printf("  %-8v p50=%-10v p90=%-10v p99=%-10v max=%v\n", r.LinkRate, r.P50, r.P90, r.P99, r.Max)
		}
	case "3":
		fmt.Println("## Fig 3: DCQCN p99 FCT slowdown vs buffer/capacity ratio")
		for _, r := range experiments.Fig03BufferRatio(scale) {
			fmt.Printf("  %5.0f us (%v): overall p99 slowdown %.2f\n", r.BufferPerCapacityUS, r.Buffer, r.Series.Overall)
		}
	case "4":
		fmt.Println("## Fig 4: byte-weighted flow size CDFs")
		for _, r := range experiments.Fig04WorkloadCDF() {
			fmt.Printf("  %-10s bytes<=1BDP=%.2f flows<1KB=%.2f\n", r.Workload, r.BytesWithin1BDP, r.FlowsUnder1KB)
		}
	case "5a", "5b", "5c":
		variant := map[string]experiments.Fig05Variant{
			"5a": experiments.Fig05aGoogleIncast,
			"5b": experiments.Fig05bFBHadoopIncast,
			"5c": experiments.Fig05cGoogleNoIncast,
		}[fig]
		res := fig05(scale, variant, runner, schemes)
		fmt.Print(experiments.FormatSeries("## Fig "+fig+": p99 FCT slowdown by flow size", res.Series))
	case "6":
		fmt.Println("## Fig 6: buffer occupancy and PFC pause time (Fig 5a workload)")
		res := fig05(scale, experiments.Fig05aGoogleIncast, runner, schemes)
		for _, s := range res.Series {
			fmt.Printf("  %-14s p99 buffer=%-10v ToR->Spine paused=%.4f Spine->ToR paused=%.4f\n",
				s.Label, res.BufferP99[s.Label],
				res.PauseFraction[s.Label]["ToR->Spine"], res.PauseFraction[s.Label]["Spine->ToR"])
		}
	case "7":
		res := experiments.Fig07StaticQueueAssignment(scale)
		fmt.Print(experiments.FormatSeries("## Fig 7a: dynamic vs static queue assignment", res.Series))
		for _, label := range sortedKeys(res.CollisionFraction) {
			fmt.Printf("  Fig 7b %-10s collision fraction = %.4f\n", label, res.CollisionFraction[label])
		}
	case "8":
		fmt.Println("## Fig 8: incast fan-in sweep")
		for _, r := range experiments.Fig08FromRecords(run(runner, experiments.Fig08Jobs(scale))) {
			fmt.Printf("  %-10s fanin=%-4d utilization=%.2f p99buffer=%v\n", r.Scheme, r.FanIn, r.Utilization, r.BufferP99)
		}
	case "9":
		fmt.Println("## Fig 9: cross-data-center tail latency")
		for _, r := range experiments.Fig09FromRecords(run(runner, experiments.Fig09Jobs(scale))) {
			fmt.Printf("  %-10s intra-p99=%.2f inter-p99=%.2f\n", r.Scheme, r.IntraP99, r.InterP99)
		}
	case "10":
		fmt.Println("## Fig 10: physical queue size vs concurrent flows")
		for _, r := range experiments.Fig10BufferOptimization(scale) {
			fmt.Printf("  %-14s flows=%-4d queueP99=%-10v (2-hop BDP=%v)\n", r.Scheme, r.ConcurrentFlows, r.QueueP99, r.TwoHopBDP)
		}
	case "11":
		res := experiments.Fig11HighPriorityQueue(scale)
		fmt.Print(experiments.FormatSeries("## Fig 11: high-priority queue ablation", res.Series))
		for _, label := range sortedKeys(res.OccupiedQueuesP99) {
			fmt.Printf("  %-18s p99 occupied queues = %.1f\n", label, res.OccupiedQueuesP99[label])
		}
	case "12":
		fmt.Println("## Fig 12: sensitivity to number of physical queues")
		for _, r := range experiments.SensitivityFromRecords(run(runner, experiments.Fig12NumPhysicalQueuesJobs(scale))) {
			fmt.Printf("  queues=%-4d collisions=%.4f p99slowdown=%.2f\n", r.Parameter, r.CollisionFraction, r.Series.Overall)
		}
	case "13":
		fmt.Println("## Fig 13: sensitivity to VFID table size")
		for _, r := range experiments.SensitivityFromRecords(run(runner, experiments.Fig13NumVFIDsJobs(scale))) {
			fmt.Printf("  vfids=%-6d collisions=%.5f overflows=%.5f p99slowdown=%.2f\n",
				r.Parameter, r.CollisionFraction, r.OverflowFraction, r.Series.Overall)
		}
	case "14":
		fmt.Println("## Fig 14: sensitivity to bloom filter size")
		for _, r := range experiments.SensitivityFromRecords(run(runner, experiments.Fig14BloomFilterSizeJobs(scale))) {
			fmt.Printf("  bloom=%-4dB p99slowdown=%.2f\n", r.Parameter, r.Series.Overall)
		}
	case "15":
		fmt.Println("## Fig 15: scheme robustness under link fail/recover (p99 slowdown by phase)")
		for _, r := range experiments.Fig15FromRecords(run(runner, experiments.Fig15Jobs(scale, schemes))) {
			fmt.Printf("  %-14s pre=%-8.2f fail=%-8.2f recovered=%-8.2f reroutes=%-4d stranded=%-5d noroute=%-5d completed=%d/%d\n",
				r.Scheme, r.PreP99, r.FailP99, r.RecoverP99, r.Reroutes, r.Stranded, r.NoRoute, r.Completed, r.Offered)
		}
	case "16":
		fmt.Println("## Fig 16: scale tier — fat-tree host-count sweep (streaming stats)")
		for _, r := range experiments.Fig16FromRecords(run(runner, experiments.Fig16Jobs(scale, nil, schemes))) {
			fmt.Printf("  %-14s hosts=%-5d switches=%-4d p99slowdown=%-8.2f util=%-6.2f p99buffer=%-10v statsSamples=%-6d completed=%d/%d digest=%s\n",
				r.Scheme, r.Hosts, r.Switches, r.P99, r.Utilization, r.BufferP99, r.StatsSamples, r.Completed, r.Offered, r.Digest)
		}
	case "17":
		fmt.Println("## Fig 17: congestion dynamics through an incast (flight recorder + series sampler)")
		for _, r := range experiments.Fig17Dynamics(scale, schemes) {
			fmt.Printf("  %-14s p99slowdown=%-8.2f peakBuffer=%-10v peakPauseFrac=%-7.4f pauseEvents=%-6d assigns=%-6d drops=%-4d events=%d\n",
				r.Scheme, r.P99, r.PeakBuffer, r.PeakPauseFraction, r.PauseEvents, r.QueueAssignments, r.Drops, r.EventsSeen)
			for _, p := range experiments.Fig17Timeline(r, 8) {
				fmt.Printf("      t=%-12v buffer=%-10v pauseFrac=%.4f\n", p.At, p.Buffer, p.PauseFraction)
			}
			if traceDir != "" {
				if err := writeFig17Traces(traceDir, r); err != nil {
					log.Fatal(err)
				}
			}
		}
		if traceDir != "" {
			fmt.Printf("  traces written to %s (load *.trace.json at https://ui.perfetto.dev)\n", traceDir)
		}
	default:
		log.Fatalf("unknown figure %q", fig)
	}
	fmt.Println()
}

// writeFig17Traces exports one scheme's flight-recorder trace as a Chrome
// trace_event file (Perfetto-loadable) and a raw JSONL event stream.
func writeFig17Traces(dir string, r experiments.Fig17Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, r.Scheme+".trace.json"))
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := telemetry.WriteChromeTrace(tf, r.Trace, r.Events); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, r.Scheme+".events.jsonl"))
	if err != nil {
		return err
	}
	defer jf.Close()
	return telemetry.WriteJSONL(jf, r.Events)
}
