// Command benchjson converts `go test -bench` output into a stable JSON
// document and compares two such documents for performance regressions. It is
// the tool behind the CI bench gate (.github/workflows/ci.yml) and the
// BENCH_*.json trajectory files at the repository root.
//
// Convert (reads bench output on stdin, writes JSON on stdout):
//
//	go test -bench=. -benchmem -count=1 -run='^$' ./internal/eventsim ./internal/netsim \
//	    | go run ./cmd/benchjson > BENCH_ci.json
//
// Compare (exits 1 if ns/op or allocs/op regressed more than the thresholds;
// flags must precede the positional file arguments, as with any Go flag
// program):
//
//	go run ./cmd/benchjson -compare -threshold 0.20 BENCH_baseline.json BENCH_ci.json
//
// allocs/op comparisons are machine-independent and use -threshold (any new
// allocation on an allocation-free baseline fails outright). ns/op
// comparisons depend on the host CPU; -ns-threshold (default: same as
// -threshold) can be set looser when the baseline was recorded on different
// hardware, as in CI against shared runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. The name is normalized by
// stripping the trailing -GOMAXPROCS suffix so results compare across
// machines with different core counts.
type Benchmark struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchjson reads and writes.
type File struct {
	Schema     string      `json:"schema"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schema = "bfc-bench/v1"

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	compare := flag.Bool("compare", false, "compare two JSON files (baseline current) instead of converting")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression in allocs/op (and ns/op unless -ns-threshold is set)")
	nsThreshold := flag.Float64("ns-threshold", -1, "allowed fractional regression in ns/op (default: -threshold)")
	flag.Parse()
	if *nsThreshold < 0 {
		*nsThreshold = *threshold
	}

	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -compare [-threshold 0.20] [-ns-threshold 0.20] <baseline.json> <current.json>")
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fatalf("baseline: %v", err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			fatalf("current: %v", err)
		}
		if failures := diff(base, cur, *nsThreshold, *threshold); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmarks within limits (ns/op +%.0f%%, allocs/op +%.0f%%)\n",
			len(base.Benchmarks), *nsThreshold*100, *threshold*100)
		return
	}

	out, err := parse(os.Stdin)
	if err != nil {
		fatalf("parse: %v", err)
	}
	if len(out.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("encode: %v", err)
	}
}

// parse reads `go test -bench` text output.
func parse(r io.Reader) (*File, error) {
	out := &File{Schema: schema}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // log line that merely starts with "Benchmark"
		}
		b := Benchmark{
			Package:    pkg,
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}

func load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(blob, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// diff returns a description of every gate violation: a benchmark in the
// baseline that is missing from current (so the gate cannot be silently
// deleted), an ns/op regression beyond nsThreshold, or an allocs/op
// regression beyond allocThreshold — where any allocation on a benchmark
// whose baseline is allocation-free fails regardless of threshold.
func diff(base, cur *File, nsThreshold, allocThreshold float64) []string {
	current := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		current[b.Package+"."+b.Name] = b
	}
	var failures []string
	for _, b := range base.Benchmarks {
		key := b.Package + "." + b.Name
		c, ok := current[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current run (refresh BENCH_baseline.json if it was renamed)", key))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsThreshold) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.2f -> %.2f (+%.1f%%, limit +%.0f%%)",
				key, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), nsThreshold*100))
		}
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("%s: allocs/op 0 -> %.0f (hot path must stay allocation-free)",
				key, c.AllocsPerOp))
		case b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold):
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (+%.1f%%, limit +%.0f%%)",
				key, b.AllocsPerOp, c.AllocsPerOp, 100*(c.AllocsPerOp/b.AllocsPerOp-1), allocThreshold*100))
		}
	}
	return failures
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
