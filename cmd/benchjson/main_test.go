package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bfc/internal/eventsim
cpu: AMD EPYC 7B13
BenchmarkScheduleFire-8        	68648761	        16.76 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleCancel-8      	75096136	        15.67 ns/op	       0 B/op	       0 allocs/op
ok  	bfc/internal/eventsim	3.850s
pkg: bfc/internal/netsim
BenchmarkLinkPacketPath-8      	24071812	        55.30 ns/op	       2 custom/op	       0 B/op	       0 allocs/op
ok  	bfc/internal/netsim	1.2s
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParse(t *testing.T) {
	f := parseSample(t)
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkScheduleFire" || b.Package != "bfc/internal/eventsim" {
		t.Fatalf("bad identity: %+v", b)
	}
	if b.NsPerOp != 16.76 || b.AllocsPerOp != 0 || b.Iterations != 68648761 {
		t.Fatalf("bad values: %+v", b)
	}
	link := f.Benchmarks[2]
	if link.Package != "bfc/internal/netsim" || link.Metrics["custom/op"] != 2 {
		t.Fatalf("bad netsim benchmark: %+v", link)
	}
	if f.GOOS != "linux" || f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("bad env: %+v", f)
	}
}

func TestDiff(t *testing.T) {
	base := parseSample(t)

	// Identical results: no failures.
	if fails := diff(base, parseSample(t), 0.20, 0.20); len(fails) != 0 {
		t.Fatalf("identical runs flagged: %v", fails)
	}

	// ns/op regression beyond the threshold.
	cur := parseSample(t)
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.5
	if fails := diff(base, cur, 0.20, 0.20); len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Fatalf("ns/op regression not caught: %v", fails)
	}

	// Within threshold: allowed.
	cur = parseSample(t)
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.1
	if fails := diff(base, cur, 0.20, 0.20); len(fails) != 0 {
		t.Fatalf("within-threshold change flagged: %v", fails)
	}

	// Any alloc on an allocation-free baseline fails regardless of threshold.
	cur = parseSample(t)
	cur.Benchmarks[1].AllocsPerOp = 1
	if fails := diff(base, cur, 0.20, 0.20); len(fails) != 1 || !strings.Contains(fails[0], "allocation-free") {
		t.Fatalf("new allocation not caught: %v", fails)
	}

	// A benchmark disappearing from the current run fails the gate.
	cur = parseSample(t)
	cur.Benchmarks = cur.Benchmarks[1:]
	if fails := diff(base, cur, 0.20, 0.20); len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing benchmark not caught: %v", fails)
	}

	// A looser ns threshold tolerates cross-machine ns/op variance while the
	// alloc gate stays strict.
	cur = parseSample(t)
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.5
	cur.Benchmarks[1].AllocsPerOp = 1
	fails := diff(base, cur, 0.75, 0.20)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocation-free") {
		t.Fatalf("split thresholds wrong: %v", fails)
	}
}
