// Command bfcctl is the client for the bfcd simulation service.
//
//	bfcctl figures                         # what the server can compile
//	bfcctl submit suite.json               # submit, print the suite id
//	bfcctl submit -wait suite.json         # submit and stream progress
//	bfcctl watch s000001                   # follow a running suite (SSE)
//	bfcctl status                          # server version + service stats
//	bfcctl status s000001                  # one status snapshot
//	bfcctl trace s000001 'test/scheme=BFC' # flight-recorder trace of one job
//	bfcctl fetch s000001 > records.jsonl   # completed records, job order
//	bfcctl fetch -table s000001            # render the FCT slowdown table
//	bfcctl cancel s000001
//	bfcctl store                           # completed artifacts on the server
//	bfcctl fleet                           # fleet status (coordinator or worker)
//	bfcctl top                             # live execution view (suites + fleet ledger)
//
// The server address comes from -addr or the BFCD_ADDR environment variable.
// Transient failures (connection errors, 429/502/503) are retried with capped
// exponential backoff; -retries bounds the attempts.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bfc/internal/experiments"
	"bfc/internal/fleet"
	"bfc/internal/harness"
	"bfc/internal/service"
	"bfc/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", defaultAddr(), "bfcd base URL")
	retries := flag.Int("retries", 3, "retries per request on transient failures (connection errors, 429/502/503)")
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()
	telemetry.SetupLogging(logOpts)
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/"), retries: *retries}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "figures":
		err = c.figures()
	case "submit":
		err = c.submit(rest)
	case "status":
		err = c.status(rest)
	case "watch":
		err = c.watch(rest)
	case "fetch":
		err = c.fetch(rest)
	case "trace":
		err = c.trace(rest)
	case "cancel":
		err = c.cancel(rest)
	case "store":
		err = c.store()
	case "fleet":
		err = c.fleet()
	case "top":
		err = c.top(rest)
	default:
		log.Printf("bfcctl: unknown command %q", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("bfcctl: %v", err)
	}
}

func defaultAddr() string {
	if addr := os.Getenv("BFCD_ADDR"); addr != "" {
		return addr
	}
	return "http://127.0.0.1:8377"
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: bfcctl [-addr URL] <command> [args]

commands:
  figures                     list compilable figures, scales and schemes
  submit [-wait] <suite.json> submit a suite spec
  status [id]                 print one suite status (no id: server version + stats)
  watch <id>                  stream progress until the suite ends
  fetch [-table] <id>         print completed records as JSONL (or a table)
  trace [-jsonl] <id> <job>   fetch one job's flight-recorder trace
                              (Chrome trace_event JSON; load in Perfetto)
  cancel <id>                 cancel a running suite
  store                       list the server's completed artifacts
  fleet                       print the server's fleet status (coordinator or worker)
  top [-interval d] [-n k]    live execution view: running suites with per-job
                              shard efficiency (SSE) and, on a coordinator,
                              the per-worker throughput ledger
`)
}

// Retry pacing: capped exponential backoff with jitter derived
// deterministically from the request ID, so a failing invocation's schedule
// is reproducible from its logs while concurrent bfcctl processes (distinct
// IDs) decorrelate.
const (
	retryBase = 200 * time.Millisecond
	retryMax  = 3 * time.Second
)

type client struct {
	base    string
	retries int
	seq     atomic.Uint64
}

func (c *client) url(path string) string { return c.base + path }

// retryable reports whether a response status is worth retrying: gateway
// hiccups and explicit server saturation. Everything else (including 4xx
// spec errors) is final.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// retryDelay picks the pause before retry attempt (0-based): the server's
// Retry-After wins when present (it knows when capacity frees), otherwise the
// deterministic backoff schedule for this request's seed.
func retryDelay(attempt int, seed uint64, resp *http.Response) time.Duration {
	if resp != nil {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fleet.Backoff(attempt, retryBase, retryMax, seed)
}

// do sends one request, retrying transient failures (transport errors,
// retryable statuses) up to c.retries times. A non-retryable response is
// returned as-is for the caller to interpret; exhausted retries surface the
// last failure.
func (c *client) do(method, path, contentType string, body []byte) (*http.Response, error) {
	id := fmt.Sprintf("bfcctl/%d/%s %s", c.seq.Add(1), method, path)
	seed := fleet.Seed(id)
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.url(path), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && !retryable(resp.StatusCode) {
			return resp, nil
		}
		var delay time.Duration
		if err != nil {
			lastErr = err
			delay = retryDelay(attempt, seed, nil)
		} else {
			lastErr = apiError(resp)
			delay = retryDelay(attempt, seed, resp)
			resp.Body.Close()
		}
		if attempt >= c.retries {
			return nil, lastErr
		}
		fmt.Fprintf(os.Stderr, "bfcctl: %v; retrying in %v (%d/%d)\n",
			lastErr, delay.Round(time.Millisecond), attempt+1, c.retries)
		time.Sleep(delay)
	}
}

// getJSON decodes a 200 response into v.
func (c *client) getJSON(path string, v any) error {
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(blob, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(blob)))
}

func (c *client) figures() error {
	var idx service.FigureIndex
	if err := c.getJSON("/api/v1/figures", &idx); err != nil {
		return err
	}
	fmt.Println("figures:")
	for _, f := range idx.Figures {
		sel := "fixed schemes"
		if f.SchemesSelectable {
			sel = "schemes selectable"
		}
		fmt.Printf("  %-8s %-18s %s\n", f.Key, "("+sel+")", f.Desc)
	}
	fmt.Printf("scales:  %s\n", strings.Join(idx.Scales, ", "))
	fmt.Printf("schemes: %s\n", strings.Join(idx.Schemes, ", "))
	return nil
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	wait := fs.Bool("wait", false, "stream progress and exit when the suite ends")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("submit needs exactly one suite file")
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := c.do(http.MethodPost, "/api/v1/suites", "application/json", blob)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var status service.SuiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return err
	}
	printStatus(status)
	if !*wait || status.State != service.StateRunning {
		return nil
	}
	return c.follow(status.ID)
}

func (c *client) status(args []string) error {
	if len(args) == 0 {
		return c.serverStatus()
	}
	if len(args) != 1 {
		return fmt.Errorf("status takes at most one suite id")
	}
	var status service.SuiteStatus
	if err := c.getJSON("/api/v1/suites/"+args[0], &status); err != nil {
		return err
	}
	printStatus(status)
	return nil
}

// serverStatus prints the server's build information and service counters —
// the no-argument form of "bfcctl status".
func (c *client) serverStatus() error {
	var info telemetry.BuildInfo
	if err := c.getJSON("/api/v1/version", &info); err != nil {
		return err
	}
	fmt.Printf("server  %s %s (%s", info.Module, info.Version, info.GoVersion)
	if info.Revision != "" {
		rev := info.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf(", rev %s", rev)
		if info.Dirty {
			fmt.Print("+dirty")
		}
	}
	fmt.Println(")")
	var stats service.Stats
	if err := c.getJSON("/api/v1/stats", &stats); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	return nil
}

// trace fetches one job's flight-recorder trace to stdout: Chrome trace_event
// JSON by default (load it at https://ui.perfetto.dev), raw event JSONL with
// -jsonl.
func (c *client) trace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	jsonl := fs.Bool("jsonl", false, "raw event JSONL instead of Chrome trace JSON")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("trace needs a suite id and a job name")
	}
	path := "/api/v1/suites/" + fs.Arg(0) + "/trace/" + fs.Arg(1)
	if *jsonl {
		path += "?format=jsonl"
	}
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("watch needs a suite id")
	}
	return c.follow(args[0])
}

// follow streams the suite's SSE events until the terminal event, then
// prints the final status line.
func (c *client) follow(id string) error {
	resp, err := c.do(http.MethodGet, "/api/v1/suites/"+id+"/events", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		switch ev.Type {
		case "job":
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %s\n", ev.Done, ev.Total, ev.Job)
		case "end":
			var status service.SuiteStatus
			if err := c.getJSON("/api/v1/suites/"+id, &status); err != nil {
				return err
			}
			printStatus(status)
			if status.State != service.StateDone {
				return fmt.Errorf("suite %s ended %s: %s", id, status.State, status.Error)
			}
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("event stream for %s ended without a terminal event", id)
}

func (c *client) fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	table := fs.Bool("table", false, "render an FCT-slowdown table instead of raw JSONL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("fetch needs a suite id")
	}
	id := fs.Arg(0)
	resp, err := c.do(http.MethodGet, "/api/v1/suites/"+id+"/results", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if !*table {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	var recs []*harness.Record
	dec := json.NewDecoder(resp.Body)
	for {
		rec := &harness.Record{}
		if err := dec.Decode(rec); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	series := experiments.SeriesFromRecords(recs)
	fmt.Print(experiments.FormatSeries("suite "+id+": p99 FCT slowdown by flow size", series))
	return nil
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel needs a suite id")
	}
	resp, err := c.do(http.MethodDelete, "/api/v1/suites/"+args[0], "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var status service.SuiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return err
	}
	printStatus(status)
	return nil
}

func (c *client) store() error {
	var entries []harness.ManifestEntry
	if err := c.getJSON("/api/v1/store", &entries); err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Printf("%s  %-14s %s\n", e.Hash, e.Scheme, e.Name)
	}
	fmt.Fprintf(os.Stderr, "%d completed artifacts\n", len(entries))
	return nil
}

// fleet prints the server's fleet status in a stable key=value form (the CI
// fleet smoke greps it).
func (c *client) fleet() error {
	var st fleet.Status
	if err := c.getJSON("/api/v1/fleet/status", &st); err != nil {
		return err
	}
	switch st.Mode {
	case "coordinator":
		alive := 0
		for _, w := range st.Workers {
			if w.Alive {
				alive++
			}
		}
		fmt.Printf("fleet mode=coordinator workers=%d alive=%d scattered=%d retried=%d local=%d remote_jobs=%d deduped_jobs=%d\n",
			len(st.Workers), alive, st.BatchesScattered, st.BatchesRetried,
			st.BatchesLocal, st.JobsRemote, st.JobsDeduped)
		for _, w := range st.Workers {
			line := fmt.Sprintf("worker %s alive=%v last_seen_ms=%d batches=%d jobs=%d failures=%d",
				w.URL, w.Alive, w.LastSeenMS, w.Batches, w.Jobs, w.Failures)
			if tp := w.Throughput; tp != nil {
				line += fmt.Sprintf(" jobs_per_sec=%.2f p50_ms=%.1f p90_ms=%.1f p99_ms=%.1f",
					tp.JobsPerSec, tp.BatchP50MS, tp.BatchP90MS, tp.BatchP99MS)
			}
			fmt.Println(line)
		}
	case "worker":
		w := st.Worker
		if w == nil {
			w = &fleet.ExecutorStatus{}
		}
		fmt.Printf("fleet mode=worker batches=%d executed=%d cached=%d busy=%d\n",
			w.Batches, w.JobsExecuted, w.JobsCached, w.Busy)
	default:
		return fmt.Errorf("server reports no fleet role (mode %q); is it running -mode standalone?", st.Mode)
	}
	return nil
}

// runView is the per-suite state bfcctl top accumulates from each suite's SSE
// stream: the most recently finished job and its execution profile.
type runView struct {
	job  string
	exec *service.ExecEventStats
}

// top renders a periodically refreshed view of the server's in-flight work:
// every running suite with the shard efficiency of its latest executed job
// (streamed over the suite's SSE channel, so nothing is recomputed server
// side), and — when the server is a fleet coordinator — the per-worker
// throughput ledger. Output is plain appended lines per refresh, not a screen
// takeover, so it pipes and greps cleanly; -n bounds the refresh count for
// one-shot sampling in scripts and CI.
func (c *client) top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("n", 0, "refreshes before exiting (0 = run until interrupted)")
	fs.Parse(args)

	var (
		mu      sync.Mutex
		runs    = make(map[string]*runView)
		watched = make(map[string]bool)
	)
	for tick := 0; *count == 0 || tick < *count; tick++ {
		if tick > 0 {
			time.Sleep(*interval)
		}
		var suites []service.SuiteStatus
		if err := c.getJSON("/api/v1/suites", &suites); err != nil {
			return err
		}
		// One SSE follower per running suite; followers outlive the suites they
		// watch only until the terminal event closes the stream.
		for _, s := range suites {
			if s.State == service.StateRunning && !watched[s.ID] {
				watched[s.ID] = true
				go c.followExec(s.ID, &mu, runs)
			}
		}
		fmt.Printf("top %s refresh=%d\n", c.base, tick+1)
		running := 0
		for _, s := range suites {
			if s.State != service.StateRunning {
				continue
			}
			running++
			line := fmt.Sprintf("suite %s running done=%d/%d cached=%d executed=%d",
				s.ID, s.Done, s.Total, s.Cached, s.Executed)
			mu.Lock()
			if v := runs[s.ID]; v != nil && v.exec != nil {
				line += fmt.Sprintf(" last=%s shards=%d util=%.1f%% events=%d wall=%.1fms spills=%d",
					v.job, v.exec.Shards, 100*v.exec.Utilization,
					v.exec.Events, v.exec.WallMS, v.exec.Spills)
			}
			mu.Unlock()
			fmt.Println(line)
		}
		if running == 0 {
			fmt.Println("no running suites")
		}
		// The fleet section is best-effort: a standalone daemon has no
		// /api/v1/fleet/status and that is not an error for top.
		var st fleet.Status
		if err := c.getJSON("/api/v1/fleet/status", &st); err == nil && st.Mode == "coordinator" {
			alive := 0
			for _, w := range st.Workers {
				if w.Alive {
					alive++
				}
			}
			fmt.Printf("fleet workers=%d alive=%d scattered=%d local=%d\n",
				len(st.Workers), alive, st.BatchesScattered, st.BatchesLocal)
			for _, w := range st.Workers {
				line := fmt.Sprintf("  worker %s alive=%v jobs=%d batches=%d", w.URL, w.Alive, w.Jobs, w.Batches)
				if tp := w.Throughput; tp != nil {
					line += fmt.Sprintf(" jobs_per_sec=%.2f p50_ms=%.1f p90_ms=%.1f p99_ms=%.1f",
						tp.JobsPerSec, tp.BatchP50MS, tp.BatchP90MS, tp.BatchP99MS)
				}
				fmt.Println(line)
			}
		}
	}
	return nil
}

// followExec consumes one suite's SSE stream, keeping only the latest "job"
// event that carries an execution profile. Errors are silently dropped: top is
// an observer, and a suite whose stream fails simply shows no exec column.
func (c *client) followExec(id string, mu *sync.Mutex, runs map[string]*runView) {
	resp, err := c.do(http.MethodGet, "/api/v1/suites/"+id+"/events", "", nil)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) != nil {
			continue
		}
		if ev.Type != "job" || ev.Exec == nil {
			continue
		}
		mu.Lock()
		runs[id] = &runView{job: ev.Job, exec: ev.Exec}
		mu.Unlock()
	}
}

// printStatus renders one status line; the stable key=value form is what the
// CI smoke test greps for its cache-hit assertions.
func printStatus(s service.SuiteStatus) {
	line := fmt.Sprintf("suite %s %s: figure=%s scale=%s jobs=%d done=%d cached=%d executed=%d digest=%s",
		s.ID, s.State, s.Figure, s.Scale, s.Total, s.Done, s.Cached, s.Executed, s.Digest)
	if s.Error != "" {
		line += " error=" + s.Error
	}
	fmt.Println(line)
}
