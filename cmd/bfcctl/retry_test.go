package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bfc/internal/fleet"
)

func TestRetryDelayScheduleIsDeterministicAndCapped(t *testing.T) {
	seed := fleet.Seed("bfcctl/1/POST /api/v1/suites")
	var first []time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		first = append(first, retryDelay(attempt, seed, nil))
	}
	// Re-deriving the schedule for the same request ID reproduces it exactly.
	for attempt, want := range first {
		if got := retryDelay(attempt, seed, nil); got != want {
			t.Fatalf("attempt %d: delay %v, want %v (schedule not deterministic)", attempt, got, want)
		}
	}
	// Each delay sits inside the jitter window of its doubled nominal value,
	// and the schedule saturates at retryMax.
	for attempt, got := range first {
		nominal := retryBase << attempt
		if nominal > retryMax {
			nominal = retryMax
		}
		if got < nominal/2 || got >= nominal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, nominal/2, nominal)
		}
	}
	if last := first[len(first)-1]; last >= retryMax {
		t.Fatalf("saturated delay %v not capped below %v", last, retryMax)
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"2"}}}
	if got := retryDelay(0, 1, resp); got != 2*time.Second {
		t.Fatalf("Retry-After delay = %v, want 2s", got)
	}
	// A garbage header falls back to the backoff schedule.
	bad := &http.Response{Header: http.Header{"Retry-After": []string{"soon"}}}
	if got := retryDelay(0, 1, bad); got >= retryBase || got < retryBase/2 {
		t.Fatalf("fallback delay = %v outside [%v, %v)", got, retryBase/2, retryBase)
	}
}

func TestDoRetriesTransientFailuresThenSucceeds(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := &client{base: srv.URL, retries: 3}
	resp, err := c.do(http.MethodGet, "/api/v1/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || attempts != 3 {
		t.Fatalf("status %d after %d attempts, want 200 after 3", resp.StatusCode, attempts)
	}
}

func TestDoDoesNotRetryFinalStatuses(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := &client{base: srv.URL, retries: 3}
	resp, err := c.do(http.MethodGet, "/api/v1/figures", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A 400 is a spec error, not a hiccup: exactly one attempt, response
	// handed back for the caller to interpret.
	if resp.StatusCode != http.StatusBadRequest || attempts != 1 {
		t.Fatalf("status %d after %d attempts, want 400 after 1", resp.StatusCode, attempts)
	}
}

func TestDoSurfacesConnectionRefusedAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.NewServeMux())
	url := srv.URL
	srv.Close() // nobody listens here any more

	c := &client{base: url, retries: 1}
	if _, err := c.do(http.MethodGet, "/api/v1/stats", "", nil); err == nil {
		t.Fatal("request against a closed server succeeded")
	}
}
