// Command workloadgen inspects the embedded workload distributions and
// generates synthetic traces as CSV for external analysis.
//
// Examples:
//
//	workloadgen -cdf                      # print the three Fig 4 distributions
//	workloadgen -workload google -load 0.6 -hosts 64 -duration 2ms > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bfc"
)

func main() {
	log.SetFlags(0)
	var (
		printCDF = flag.Bool("cdf", false, "print flow-count and byte-weighted CDFs of the built-in workloads")
		wlName   = flag.String("workload", "google", "workload: google, fb_hadoop, websearch")
		load     = flag.Float64("load", 0.6, "target load")
		hosts    = flag.Int("hosts", 64, "number of hosts")
		duration = flag.Duration("duration", 2*time.Millisecond, "trace horizon")
		seed     = flag.Int64("seed", 1, "random seed")
		incast   = flag.Bool("incast", false, "add 5% 100-to-1 incast")
	)
	flag.Parse()

	if *printCDF {
		for _, name := range []string{"google", "fb_hadoop", "websearch"} {
			cdf, err := bfc.WorkloadByName(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("# %s (size_bytes, flow_cdf, byte_cdf); mean=%v\n", cdf.Name, cdf.Mean())
			bw := cdf.ByteWeightedCDF()
			for i, p := range cdf.Points() {
				fmt.Printf("%d,%.4f,%.4f\n", p.Size, p.Cum, bw[i].Cum)
			}
			fmt.Println()
		}
		return
	}

	cdf, err := bfc.WorkloadByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	topo := bfc.NewSingleSwitch(*hosts, 100*bfc.Gbps, bfc.Microsecond)
	cfg := bfc.WorkloadConfig{
		Hosts:    topo.Hosts(),
		CDF:      cdf,
		Load:     *load,
		HostRate: 100 * bfc.Gbps,
		Duration: bfc.Time(duration.Nanoseconds()) * bfc.Nanosecond,
		Seed:     *seed,
	}
	if *incast {
		cfg.Incast = bfc.IncastConfig{Enabled: true, FanIn: 100, AggregateSize: 20 * bfc.MB, LoadFraction: 0.05}
	}
	trace, err := bfc.GenerateWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# flow_id,src,dst,size_bytes,start_ps,incast")
	for _, f := range trace.Flows {
		fmt.Printf("%d,%d,%d,%d,%d,%v\n", f.ID, f.Src, f.Dst, f.Size, int64(f.StartTime), f.IsIncast)
	}
	log.Printf("generated %d flows (%v background + %v incast bytes, offered load %.2f)",
		len(trace.Flows), trace.BackgroundBytes, trace.IncastBytes, trace.OfferedLoad)
}
