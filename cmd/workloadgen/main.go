// Command workloadgen inspects the embedded workload distributions and
// generates synthetic traces as CSV for external analysis. All logic lives in
// internal/workload (GenerateCSVTrace, FormatCDFTable); this file is flag
// parsing only.
//
// Examples:
//
//	workloadgen -cdf                      # print the three Fig 4 distributions
//	workloadgen -workload google -load 0.6 -hosts 64 -duration 2ms > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bfc/internal/units"
	"bfc/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		printCDF = flag.Bool("cdf", false, "print flow-count and byte-weighted CDFs of the built-in workloads")
		wlName   = flag.String("workload", "google", "workload: google, fb_hadoop, websearch")
		load     = flag.Float64("load", 0.6, "target load")
		hosts    = flag.Int("hosts", 64, "number of hosts")
		duration = flag.Duration("duration", 2*time.Millisecond, "trace horizon")
		seed     = flag.Int64("seed", 1, "random seed")
		incast   = flag.Bool("incast", false, "add 5% 100-to-1 incast")
	)
	flag.Parse()

	if *printCDF {
		var cdfs []*workload.CDF
		for _, name := range []string{"google", "fb_hadoop", "websearch"} {
			cdf, err := workload.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			cdfs = append(cdfs, cdf)
		}
		fmt.Print(workload.FormatCDFTable(cdfs...))
		return
	}

	csv, summary, err := workload.GenerateCSVTrace(workload.CSVTraceConfig{
		Workload: *wlName,
		Load:     *load,
		NumHosts: *hosts,
		Duration: units.Time(duration.Nanoseconds()) * units.Nanosecond,
		Seed:     *seed,
		Incast:   *incast,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(csv)
	log.Print(summary)
}
