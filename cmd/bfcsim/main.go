// Command bfcsim runs a single simulation: pick a scheme, a topology, a
// workload and a load level, and it prints the flow-completion-time slowdown
// table plus the aggregate statistics the paper reports.
//
// Example:
//
//	bfcsim -scheme bfc -topology t2 -workload google -load 0.6 -incast -duration 2ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"bfc"
	"bfc/internal/telemetry"
	"bfc/internal/telemetry/execstats"
	"bfc/internal/units"
)

func main() {
	log.SetFlags(0)
	var (
		schemeName = flag.String("scheme", "bfc", "scheme: bfc, bfc-vfid, dcqcn, dcqcn+win, dcqcn+win+sfq, hpcc, ideal-fq")
		topoName   = flag.String("topology", "t2", "topology: t1, t2, star:<hosts>, fattree:<hosts>")
		wlName     = flag.String("workload", "google", "workload: google, fb_hadoop, websearch")
		load       = flag.Float64("load", 0.6, "average background load (fraction of host capacity)")
		incast     = flag.Bool("incast", false, "add 5% 100-to-1 incast traffic")
		duration   = flag.Duration("duration", 2*time.Millisecond, "workload horizon")
		drain      = flag.Duration("drain", 2*time.Millisecond, "extra drain time after the horizon")
		seed       = flag.Int64("seed", 1, "random seed")
		queues     = flag.Int("queues", 32, "physical queues per egress port")
		buffer     = flag.Int("buffer-mb", 12, "switch shared buffer (MB)")
		shards     = flag.Int("shards", 0, "shards for the conservative-PDES engine (0/1 = serial, >=2 = explicit, -1 = auto: min(pods, GOMAXPROCS)); output is byte-identical across shard counts")
		digest     = flag.Bool("digest", false, "print the SHA-256 result digest (telemetry excluded); identical digests across -shards values certify determinism")
		execStats  = flag.Bool("exec-stats", false, "collect and print the wall-clock execution profile (per-shard events, barrier wait, window utilization, boundary spills); observational — digests are unchanged")
		execTrace  = flag.String("exec-trace", "", "write a wall-clock Chrome trace of the execution machinery to this file (implies -exec-stats); load in Perfetto")
	)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	telemetry.SetupLogging(logOpts)

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	cdf, err := bfc.WorkloadByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}

	simDuration := bfc.Time(duration.Nanoseconds()) * bfc.Nanosecond
	wl := bfc.WorkloadConfig{
		Hosts:    topo.Hosts(),
		CDF:      cdf,
		Load:     *load,
		HostRate: 100 * bfc.Gbps,
		Duration: simDuration,
		Seed:     *seed,
	}
	if *incast {
		wl.Incast = bfc.IncastConfig{
			Enabled: true, FanIn: 100, AggregateSize: 20 * bfc.MB, LoadFraction: 0.05,
		}
	}
	trace, err := bfc.GenerateWorkload(wl)
	if err != nil {
		log.Fatal(err)
	}

	opts := bfc.DefaultOptions(scheme, topo)
	opts.Duration = simDuration
	opts.Drain = bfc.Time(drain.Nanoseconds()) * bfc.Nanosecond
	opts.NumQueues = *queues
	opts.SwitchBuffer = bfc.Bytes(*buffer) * bfc.MB
	opts.Seed = *seed
	opts.Shards = *shards
	opts.ExecStats = *execStats || *execTrace != ""

	start := time.Now()
	res, err := bfc.Run(opts, trace.Flows)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("scheme=%v topology=%s workload=%s load=%.0f%% incast=%v\n",
		scheme, *topoName, cdf.Name, *load*100, *incast)
	fmt.Printf("flows: %d offered, %d completed; simulated %v in %v (%d events, %s)\n",
		res.FlowsTotal, res.FlowsCompleted, res.Elapsed, elapsed.Round(time.Millisecond), res.Events,
		res.Sharding.Describe())
	fmt.Printf("utilization=%.2f drops=%d ecn-marks=%d pfc-pauses=%d bfc-frames=%d\n",
		res.Utilization, res.Drops, res.ECNMarks, res.PFCPauses, res.BFCFrames)
	if *digest {
		d, err := bfc.ResultDigest(res)
		if err != nil {
			log.Fatal(err)
		}
		// The execution mode rides with the digest so a sharded request that
		// fell back to serial is visible next to the bytes it certifies.
		fmt.Printf("digest=%s execution=%s\n", d, res.Sharding.Describe())
	}
	if ex := res.Exec; ex != nil {
		fmt.Printf("exec: shards=%d windows=%d barriers=%d utilization=%.1f%% busy=%v barrier-wait=%v spills=%d\n",
			len(ex.Shards), ex.Windows, ex.Barriers, 100*ex.Utilization(),
			time.Duration(ex.BusyNS()).Round(time.Microsecond),
			time.Duration(ex.BarrierWaitNS()).Round(time.Microsecond), ex.Spills())
		for i := range ex.Shards {
			ss := &ex.Shards[i]
			fmt.Printf("  shard %d: events=%d heap-hw=%d pool=%d/%d util=%.1f%% boundary: pushes=%d occ-hw=%d spills=%d max-drain=%d\n",
				ss.Shard, ss.Events, ss.HeapHighWater, ss.PoolAllocated, ss.PoolRecycled,
				100*ss.Utilization(), ss.Boundary.Pushes, ss.Boundary.OccupancyHighWater,
				ss.Boundary.Spills, ss.Boundary.MaxDrain)
		}
		if *execTrace != "" {
			tf, err := os.Create(*execTrace)
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("bfcsim %v %s", scheme, *topoName)
			if err := execstats.WriteChromeTrace(tf, name, ex); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("exec trace written to %s (%d window spans)\n", *execTrace, len(ex.Spans))
		}
	}
	fmt.Printf("buffer occupancy: p50=%v p99=%v max=%v\n",
		units.Bytes(res.BufferOccupancy.Percentile(50)),
		units.Bytes(res.BufferOccupancy.Percentile(99)),
		res.MaxBufferOccupancy)
	if res.Assignments > 0 {
		fmt.Printf("bfc: pauses=%d resumes=%d collisions=%.4f max-active-flows=%d\n",
			res.Pauses, res.Resumes, res.CollisionFraction(), res.MaxActiveFlows)
	}
	fmt.Println("\nFCT slowdown by flow size (non-incast traffic):")
	fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "bucket", "count", "mean", "p50", "p95", "p99")
	for _, row := range res.FCT.Rows() {
		fmt.Printf("%-12s %8d %8.2f %8.2f %8.2f %8.2f\n",
			row.Bucket.Label, row.Count, row.Mean, row.P50, row.P95, row.P99)
	}
}

func parseScheme(name string) (bfc.Scheme, error) {
	switch strings.ToLower(name) {
	case "bfc":
		return bfc.SchemeBFC, nil
	case "bfc-vfid", "bfc-static":
		return bfc.SchemeBFCStatic, nil
	case "dcqcn":
		return bfc.SchemeDCQCN, nil
	case "dcqcn+win", "dcqcn-win":
		return bfc.SchemeDCQCNWin, nil
	case "dcqcn+win+sfq", "dcqcn-win-sfq":
		return bfc.SchemeDCQCNWinSFQ, nil
	case "hpcc":
		return bfc.SchemeHPCC, nil
	case "ideal-fq", "idealfq", "ideal":
		return bfc.SchemeIdealFQ, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

func parseTopology(name string) (*bfc.Topology, error) {
	switch {
	case strings.EqualFold(name, "t1"):
		return bfc.NewT1(), nil
	case strings.EqualFold(name, "t2"):
		return bfc.NewT2(), nil
	case strings.HasPrefix(strings.ToLower(name), "star:"):
		var hosts int
		if _, err := fmt.Sscanf(name[5:], "%d", &hosts); err != nil || hosts < 2 {
			return nil, fmt.Errorf("invalid star topology %q (want star:<hosts>)", name)
		}
		return bfc.NewSingleSwitch(hosts, 100*bfc.Gbps, bfc.Microsecond), nil
	case strings.HasPrefix(strings.ToLower(name), "fattree:"):
		var hosts int
		if _, err := fmt.Sscanf(name[8:], "%d", &hosts); err != nil || hosts < 8 {
			return nil, fmt.Errorf("invalid fat-tree topology %q (want fattree:<hosts>, hosts >= 8)", name)
		}
		return bfc.NewFatTree(hosts, 100*bfc.Gbps, bfc.Microsecond), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
