// Command scenarios runs a JSON scenario spec (see internal/scenario and the
// worked examples under examples/scenarios/) against a Clos fabric for one or
// more schemes and prints per-phase FCT tables, injection metrics, and a
// SHA-256 digest of each full result.
//
// The digest is the determinism contract made visible: the same spec and
// seed must print identical digests on every run, every -parallel value
// (worker-pool sharding across jobs), and every -shards value (the
// conservative-PDES engine within one run — scenario events apply at
// coordinator barriers, so fault storms parallelize too). The CI
// scenario-smoke job diffs two invocations with different -parallel values
// and the shard-smoke job diffs -shards 1/2/4. The digest excludes attached
// telemetry, so -trace-dir runs print the same digests as untraced ones (the
// CI telemetry-smoke job diffs exactly that).
//
// Examples:
//
//	scenarios -spec examples/scenarios/linkflap.json
//	scenarios -spec examples/scenarios/incast-storm.json -schemes BFC,DCQCN -digest
//	scenarios -spec my.json -tor 4 -spine 4 -hosts 16 -duration 1ms -load 0.7
//	scenarios -spec examples/scenarios/linkflap.json -trace-dir traces/
//	scenarios -spec examples/scenarios/linkflap.json -tor 8 -digest -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bfc/internal/harness"
	"bfc/internal/packet"
	"bfc/internal/scenario"
	"bfc/internal/sim"
	"bfc/internal/telemetry"
	"bfc/internal/topology"
	"bfc/internal/units"
	"bfc/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		specPath = flag.String("spec", "", "path to the JSON scenario spec (required)")
		schemes  = flag.String("schemes", "all", `comma-separated schemes ("BFC,DCQCN,...") or "all"`)
		numToR   = flag.Int("tor", 2, "number of ToR switches")
		numSpine = flag.Int("spine", 2, "number of spine switches")
		hosts    = flag.Int("hosts", 8, "hosts per ToR")
		duration = flag.Duration("duration", 400*time.Microsecond, "workload horizon")
		drain    = flag.Duration("drain", 2*time.Millisecond, "extra time for in-flight flows to finish")
		load     = flag.Float64("load", 0.6, "background load fraction (0 disables background traffic)")
		cdfName  = flag.String("cdf", "google", "background flow-size distribution (google, fb_hadoop, websearch)")
		seed     = flag.Int64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size")
		shards   = flag.Int("shards", 0, "shards per run for the conservative-PDES engine (0/1 = serial, >=2 = explicit, -1 = auto); scenario results are byte-identical across shard counts")
		digest   = flag.Bool("digest", false, "print only scheme digests (for determinism checks)")
		traceDir = flag.String("trace-dir", "", "write per-scheme flight-recorder traces (<scheme>.trace.json + <scheme>.events.jsonl) to this directory")
		execProf = flag.Bool("exec-stats", false, "collect wall-clock execution profiles and print the suite aggregate to stderr (observational; digests unchanged)")
	)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	telemetry.SetupLogging(logOpts)
	if *specPath == "" {
		log.Fatal("scenarios: -spec is required (see examples/scenarios/)")
	}
	blob, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scenario.ParseSpec(blob)
	if err != nil {
		log.Fatal(err)
	}
	schemeList, err := sim.ParseSchemes(*schemes)
	if err != nil {
		log.Fatal(err)
	}

	dur := units.Time(duration.Nanoseconds()) * units.Nanosecond
	drainT := units.Time(drain.Nanoseconds()) * units.Nanosecond
	cdf, err := workload.ByName(*cdfName)
	if err != nil {
		log.Fatal(err)
	}

	topoFn := func() *topology.Topology {
		return topology.NewClos(topology.ClosConfig{
			Name:        "scenario-clos",
			NumToR:      *numToR,
			NumSpine:    *numSpine,
			HostsPerToR: *hosts,
			LinkRate:    100 * units.Gbps,
			LinkDelay:   1 * units.Microsecond,
		})
	}

	grid := harness.Grid{
		Base: harness.Job{
			Name:     fmt.Sprintf("scenario/%s/seed=%d", spec.Name, *seed),
			Meta:     map[string]string{"scenario": spec.Name, "seed": fmt.Sprint(*seed)},
			Topology: topoFn,
			Flows: func(topo *topology.Topology) []*packet.Flow {
				if *load <= 0 {
					return nil
				}
				tr, err := workload.Generate(workload.Config{
					Hosts:    topo.Hosts(),
					CDF:      cdf,
					Load:     *load,
					HostRate: topo.HostRate(topo.Hosts()[0]),
					Duration: dur,
					Seed:     *seed,
				})
				if err != nil {
					panic(err)
				}
				return tr.Flows
			},
			Options: []func(*sim.Options){func(o *sim.Options) {
				o.Duration = dur
				o.Drain = drainT
				o.Scenario = spec
				o.Shards = *shards
				o.ExecStats = *execProf
			}},
		},
		Axes: []harness.Axis{harness.SchemeAxis(schemeList)},
	}

	jobs := grid.Jobs()
	// Flight recorders are observational: attaching one leaves the job hash,
	// the result, and therefore the printed digest unchanged. The rings are
	// created up front and only read after Run returns, so the worker count
	// cannot influence what a trace contains.
	var rings []*telemetry.Ring
	if *traceDir != "" {
		rings = make([]*telemetry.Ring, len(jobs))
		for i := range jobs {
			ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
			rings[i] = ring
			jobs[i].Options = append(jobs[i].Options, func(o *sim.Options) { o.Recorder = ring })
		}
	}

	runner := &harness.Runner{Parallel: *parallel}
	recs, err := runner.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	if *execProf && runner.Exec.Runs > 0 {
		// The harness-level aggregate: one line across every scheme's run.
		ex := runner.Exec
		fmt.Fprintf(os.Stderr, "# exec: runs=%d sharded=%d events=%d windows=%d barriers=%d utilization=%.1f%% (worst %.1f%%) busy=%v barrier-wait=%v spills=%d\n",
			ex.Runs, ex.ShardedRuns, ex.Events, ex.Windows, ex.Barriers,
			100*ex.Utilization(), 100*ex.UtilizationMin,
			time.Duration(ex.BusyNS).Round(time.Microsecond),
			time.Duration(ex.BarrierWaitNS).Round(time.Microsecond), ex.Spills)
	}

	if *traceDir != "" {
		if err := writeTraces(*traceDir, jobs, recs, rings); err != nil {
			log.Fatal(err)
		}
	}

	if !*digest {
		fmt.Printf("# scenario %q: %d events on %dx%d Clos (%d hosts), %v horizon\n\n",
			spec.Name, len(spec.Events), *numToR, *numSpine, *numToR**hosts, dur)
	}
	for _, rec := range recs {
		sum := resultDigest(rec)
		if *digest {
			// Digest lines carry only digest + scheme so they diff cleanly
			// across -shards values; the execution mode (sharded, serial, or
			// a forced-serial fallback) goes to stderr instead of silence.
			fmt.Printf("%s %s\n", sum, rec.Scheme)
			fmt.Fprintf(os.Stderr, "# %s execution=%s\n", rec.Scheme, rec.Result.Sharding.Describe())
			continue
		}
		printResult(rec, sum)
	}
}

// resultDigest hashes the full marshalled result (minus attached telemetry,
// which is observational): any nondeterminism anywhere in the run shows up as
// a digest change.
func resultDigest(rec *harness.Record) string {
	sum, err := sim.ResultDigest(rec.Result)
	if err != nil {
		log.Fatal(err)
	}
	return sum
}

// writeTraces exports each scheme's recorded events as a Perfetto-loadable
// Chrome trace plus the raw JSONL event stream.
func writeTraces(dir string, jobs []harness.Job, recs []*harness.Record, rings []*telemetry.Ring) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range jobs {
		topo := jobs[i].Topology()
		cfg := telemetry.TraceConfig{
			RunName:  jobs[i].Name,
			NodeName: func(n packet.NodeID) string { return topo.Node(n).Name },
		}
		events := rings[i].Events()
		scheme := strings.ReplaceAll(recs[i].Scheme, "+", "_")
		tf, err := os.Create(filepath.Join(dir, scheme+".trace.json"))
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTrace(tf, cfg, events); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		jf, err := os.Create(filepath.Join(dir, scheme+".events.jsonl"))
		if err != nil {
			return err
		}
		if err := telemetry.WriteJSONL(jf, events); err != nil {
			jf.Close()
			return err
		}
		if err := jf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s traces: %d events (%d seen, %d overwritten)\n",
			recs[i].Scheme, len(events), rings[i].Seen(), rings[i].Overwritten())
	}
	return nil
}

func printResult(rec *harness.Record, sum string) {
	res := rec.Result
	m := res.Scenario
	fmt.Printf("## %s\n", rec.Scheme)
	fmt.Printf("  %-28s %10s %10s %8s %8s\n", "phase", "start", "end", "flows", "p99slow")
	for _, ph := range m.Phases {
		fmt.Printf("  %-28s %9.1fus %9.1fus %8d %8.2f\n",
			ph.Name, ph.Start.Microseconds(), ph.End.Microseconds(),
			ph.Completed, ph.FCT.OverallPercentile(99))
	}
	fmt.Printf("  events=%d reroutes=%d injected=%d stranded=%d (%d bytes) noroute=%d drops=%d completed=%d/%d\n",
		m.EventsApplied, m.Reroutes, m.InjectedFlows, m.StrandedPackets,
		m.StrandedBytes, m.NoRouteDrops, res.Drops, res.FlowsCompleted, res.FlowsTotal)
	fmt.Printf("  digest=%s execution=%s\n\n", sum, res.Sharding.Describe())
}
