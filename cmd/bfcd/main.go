// Command bfcd is the simulation-as-a-service daemon: it serves the
// internal/service HTTP API (suite submission, progress streams, results) in
// front of a content-addressed result store, so repeated submissions of
// already-computed grids are served from cache without re-simulating.
//
//	bfcd -addr 127.0.0.1:8377 -store results/
//
// The store directory is the same artifact layout cmd/experiments -out
// writes: pointing bfcd at an existing results directory serves those records
// from cache, and artifacts bfcd computes can later be consumed by
// cmd/experiments -resume.
//
// Observability: GET /metrics exposes Prometheus text-format counters for the
// suite/job/cache/HTTP planes, GET /api/v1/version reports build information,
// and -pprof mounts net/http/pprof under /debug/pprof/. Requests are logged
// through the shared -log-level / -log-json slog flags.
//
// Use cmd/bfcctl (or curl) against the API; see README.md "Service".
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfc/internal/harness"
	"bfc/internal/service"
	"bfc/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8377", "listen address")
		storeDir  = flag.String("store", "bfcd-store", "result store directory (shared with cmd/experiments -out)")
		workers   = flag.Int("parallel", 0, "simulation worker pool size (0 = all cores)")
		maxSuites = flag.Int("max-suites", 4, "maximum concurrently running suites")
		cacheSize = flag.Int("cache", 128, "in-memory LRU capacity (decoded records)")
		history   = flag.Int("history", 64, "retained terminal suites (older ones are forgotten; their artifacts stay in the store)")
		streaming = flag.Int("streaming-hosts", 0, "force streaming stats on fabrics with at least this many hosts (0 = default threshold, negative = never)")
		traceRing = flag.Int("trace-ring", 0, "flight-recorder ring capacity per traced job (0 = default)")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger := telemetry.SetupLogging(logOpts)

	store, err := harness.NewStore(*storeDir)
	if err != nil {
		logger.Error("opening store", "err", err)
		os.Exit(1)
	}
	svc, err := service.New(service.Config{
		Store:           store,
		Workers:         *workers,
		MaxActiveSuites: *maxSuites,
		CacheEntries:    *cacheSize,
		MaxSuiteHistory: *history,
		StreamingHosts:  *streaming,
		TraceRingSize:   *traceRing,
		Logger:          logger,
	})
	if err != nil {
		logger.Error("starting service", "err", err)
		os.Exit(1)
	}

	handler := service.NewHandler(svc)
	if *withPprof {
		// The profiling mux wraps the API so pprof traffic skips the request
		// metrics (scrapes of /debug/pprof/profile run for seconds and would
		// distort the latency histogram).
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	// The base context is cancelled on the first signal, which unblocks SSE
	// streams so Shutdown can drain cleanly; a second signal kills the
	// process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	info := telemetry.ReadBuildInfo()
	logger.Info("bfcd serving",
		"addr", *addr, "store", store.Dir(), "pprof", *withPprof,
		"version", info.Version, "go", info.GoVersion)

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("bfcd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	svc.Close()
}
