// Command bfcd is the simulation-as-a-service daemon: it serves the
// internal/service HTTP API (suite submission, progress streams, results) in
// front of a content-addressed result store, so repeated submissions of
// already-computed grids are served from cache without re-simulating.
//
//	bfcd -addr 127.0.0.1:8377 -store results/
//
// The store directory is the same artifact layout cmd/experiments -out
// writes: pointing bfcd at an existing results directory serves those records
// from cache, and artifacts bfcd computes can later be consumed by
// cmd/experiments -resume.
//
// Fleet mode distributes suites across daemons (see README.md "Fleet"):
//
//	bfcd -mode worker -addr 127.0.0.1:8381 -store worker1/ \
//	     -register http://127.0.0.1:8377
//	bfcd -mode coordinator -addr 127.0.0.1:8377 -store coord/ \
//	     -fleet-workers http://127.0.0.1:8381,http://127.0.0.1:8382
//
// A coordinator compiles each submitted suite, satisfies jobs already present
// anywhere in the fleet (the union of worker stores plus its own cache) with
// zero execution, scatters the rest to workers in bounded batches, and merges
// the records into a result stream byte-identical to a single-node run.
// Workers execute batches against their own stores and announce themselves to
// the coordinator; either side surviving the other's restart is normal
// operation.
//
// Observability: GET /metrics exposes Prometheus text-format counters for the
// suite/job/cache/HTTP planes (plus bfcd_fleet_* in fleet modes), GET
// /api/v1/version reports build information, and -pprof mounts net/http/pprof
// under /debug/pprof/. Requests are logged through the shared -log-level /
// -log-json slog flags. Every locally executed job also collects a wall-clock
// execution profile (internal/telemetry/execstats): the bfcd_exec_* families
// aggregate it, "job" SSE events carry a per-job summary, and a coordinator
// additionally maintains an EWMA per-worker throughput ledger served inside
// GET /api/v1/fleet/status and as bfcd_fleet_worker_throughput. "bfcctl top"
// renders both live.
//
// Use cmd/bfcctl (or curl) against the API; see README.md "Service".
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bfc/internal/fleet"
	"bfc/internal/harness"
	"bfc/internal/service"
	"bfc/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8377", "listen address")
		storeDir  = flag.String("store", "bfcd-store", "result store directory (shared with cmd/experiments -out)")
		workers   = flag.Int("parallel", 0, "simulation worker pool size (0 = all cores)")
		maxSuites = flag.Int("max-suites", 4, "maximum concurrently running suites")
		cacheSize = flag.Int("cache", 128, "in-memory LRU capacity (decoded records)")
		history   = flag.Int("history", 64, "retained terminal suites (older ones are forgotten; their artifacts stay in the store)")
		streaming = flag.Int("streaming-hosts", 0, "force streaming stats on fabrics with at least this many hosts (0 = default threshold, negative = never)")
		traceRing = flag.Int("trace-ring", 0, "flight-recorder ring capacity per traced job (0 = default)")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		mode       = flag.String("mode", "standalone", "daemon role: standalone, coordinator or worker")
		fleetPeers = flag.String("fleet-workers", "", "coordinator: comma-separated worker base URLs")
		register   = flag.String("register", "", "worker: coordinator base URL to announce to")
		selfURL    = flag.String("self", "", "worker: advertised base URL (default http://<addr>)")
		batchJobs  = flag.Int("fleet-batch", 4, "coordinator: jobs per scattered batch")
		inflight   = flag.Int("fleet-inflight", 2, "coordinator: concurrent batches per worker")
		batchTO    = flag.Duration("fleet-timeout", 2*time.Minute, "coordinator: per-batch RPC timeout")
		heartbeat  = flag.Duration("fleet-heartbeat", 5*time.Second, "fleet: heartbeat / announce interval")
		attempts   = flag.Int("fleet-attempts", 3, "coordinator: remote attempts per batch before local fallback")
	)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger := telemetry.SetupLogging(logOpts)

	store, err := harness.NewStore(*storeDir)
	if err != nil {
		logger.Error("opening store", "err", err)
		os.Exit(1)
	}

	// One registry for the whole daemon, so the service and fleet metric
	// families land in the same /metrics exposition.
	registry := telemetry.NewRegistry()
	svcCfg := service.Config{
		Store:           store,
		Workers:         *workers,
		MaxActiveSuites: *maxSuites,
		CacheEntries:    *cacheSize,
		MaxSuiteHistory: *history,
		StreamingHosts:  *streaming,
		TraceRingSize:   *traceRing,
		Registry:        registry,
		Logger:          logger,
	}

	var (
		coord  *fleet.Coordinator
		exec   *fleet.Executor
		extras []func(*http.ServeMux)
	)
	switch *mode {
	case "standalone":
	case "coordinator":
		var peers []string
		for _, u := range strings.Split(*fleetPeers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peers = append(peers, u)
			}
		}
		coord, err = fleet.NewCoordinator(fleet.Config{
			Store:             store,
			Workers:           peers,
			BatchJobs:         *batchJobs,
			InflightPerWorker: *inflight,
			BatchTimeout:      *batchTO,
			HeartbeatInterval: *heartbeat,
			MaxAttempts:       *attempts,
			StreamingHosts:    *streaming,
			Registry:          registry,
			Logger:            logger,
		})
		if err != nil {
			logger.Error("starting coordinator", "err", err)
			os.Exit(1)
		}
		// Assigned only when non-nil: a typed-nil Dispatcher would make the
		// service believe it has a fleet.
		svcCfg.Fleet = coord
		extras = append(extras, coord.Routes())
	case "worker":
		parallel := *workers
		if parallel <= 0 {
			parallel = runtime.NumCPU()
		}
		exec, err = fleet.NewExecutor(fleet.ExecutorConfig{
			Store:          store,
			Parallel:       parallel,
			StreamingHosts: *streaming,
			Registry:       registry,
			Logger:         logger,
		})
		if err != nil {
			logger.Error("starting worker", "err", err)
			os.Exit(1)
		}
		extras = append(extras, exec.Routes())
	default:
		logger.Error("unknown -mode", "mode", *mode)
		os.Exit(1)
	}

	svc, err := service.New(svcCfg)
	if err != nil {
		logger.Error("starting service", "err", err)
		os.Exit(1)
	}

	handler := service.NewHandler(svc, extras...)
	if *withPprof {
		// The profiling mux wraps the API so pprof traffic skips the request
		// metrics (scrapes of /debug/pprof/profile run for seconds and would
		// distort the latency histogram).
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	// The base context is cancelled on the first signal, which unblocks SSE
	// streams so Shutdown can drain cleanly; a second signal kills the
	// process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if exec != nil && *register != "" {
		self := *selfURL
		if self == "" {
			self = "http://" + *addr
		}
		go exec.Announce(ctx, *register, self, *heartbeat)
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	info := telemetry.ReadBuildInfo()
	logger.Info("bfcd serving",
		"addr", *addr, "mode", *mode, "store", store.Dir(), "pprof", *withPprof,
		"version", info.Version, "go", info.GoVersion)

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("bfcd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	// Drain order: stop accepting HTTP, cancel running suites (which aborts
	// in-flight fleet dispatches), then stop heartbeats.
	svc.Close()
	if coord != nil {
		coord.Close()
	}
}
