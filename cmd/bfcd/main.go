// Command bfcd is the simulation-as-a-service daemon: it serves the
// internal/service HTTP API (suite submission, progress streams, results) in
// front of a content-addressed result store, so repeated submissions of
// already-computed grids are served from cache without re-simulating.
//
//	bfcd -addr 127.0.0.1:8377 -store results/
//
// The store directory is the same artifact layout cmd/experiments -out
// writes: pointing bfcd at an existing results directory serves those records
// from cache, and artifacts bfcd computes can later be consumed by
// cmd/experiments -resume.
//
// Use cmd/bfcctl (or curl) against the API; see README.md "Service".
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfc/internal/harness"
	"bfc/internal/service"
)

func main() {
	log.SetFlags(0)
	var (
		addr      = flag.String("addr", "127.0.0.1:8377", "listen address")
		storeDir  = flag.String("store", "bfcd-store", "result store directory (shared with cmd/experiments -out)")
		workers   = flag.Int("parallel", 0, "simulation worker pool size (0 = all cores)")
		maxSuites = flag.Int("max-suites", 4, "maximum concurrently running suites")
		cacheSize = flag.Int("cache", 128, "in-memory LRU capacity (decoded records)")
		history   = flag.Int("history", 64, "retained terminal suites (older ones are forgotten; their artifacts stay in the store)")
		streaming = flag.Int("streaming-hosts", 0, "force streaming stats on fabrics with at least this many hosts (0 = default threshold, negative = never)")
	)
	flag.Parse()

	store, err := harness.NewStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Store:           store,
		Workers:         *workers,
		MaxActiveSuites: *maxSuites,
		CacheEntries:    *cacheSize,
		MaxSuiteHistory: *history,
		StreamingHosts:  *streaming,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The base context is cancelled on the first signal, which unblocks SSE
	// streams so Shutdown can drain cleanly; a second signal kills the
	// process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	server := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	log.Printf("bfcd: serving on http://%s (store %s)", *addr, store.Dir())

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("bfcd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("bfcd: shutdown: %v", err)
	}
	svc.Close()
}
