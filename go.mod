module bfc

go 1.24
